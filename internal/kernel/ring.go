package kernel

// Descriptor-ring setup and register-context scheduling. Both are
// setup-time services in the paper's sense — ordinary kernel interfaces,
// no kernel modification:
//
//   - SetupRing / RegisterRingBuffer are the mmap-and-register step of
//     the batched path: the kernel pins the process's ring page and
//     buffer frames with the engine (RDMA memory registration) and maps
//     the per-context doorbell page into exactly one address space.
//   - AcquireContext arbitrates the engine's 4-8 register contexts when
//     dozens-hundreds of processes want one (§3.2's "if every context is
//     taken..."), under three policies: FIFO wait, LRU key-stealing
//     revocation, and cooperative yield (acquire/release per batch).
//
// Key-stealing is only sound in keyed mode: revocation zeroes the
// victim's key, so its stale doorbells and shadow stores are silently
// dropped by the engine's key check rather than kicking transfers on a
// context it no longer owns.

import (
	"fmt"

	"uldma/internal/dma"
	"uldma/internal/phys"
	"uldma/internal/proc"
	"uldma/internal/sim"
	"uldma/internal/vm"
)

// RingDoorbellVA is where a process's ring doorbell page is mapped.
const RingDoorbellVA vm.VAddr = 0xD000_0000

// CtxPolicy selects how AcquireContext arbitrates register contexts
// under oversubscription.
type CtxPolicy int

const (
	// CtxFIFO queues the requester until a holder exits or releases;
	// wakeups arrive in request order.
	CtxFIFO CtxPolicy = iota
	// CtxSteal revokes the least-recently-used holder's context (key
	// zeroed, ring torn down) and grants it to the requester.
	CtxSteal
	// CtxYield relies on holders releasing after every batch; the
	// acquire side waits FIFO like CtxFIFO, but under the cooperative
	// discipline a context frees at batch granularity.
	CtxYield
)

// String returns the policy's registry-stable name.
func (p CtxPolicy) String() string {
	switch p {
	case CtxFIFO:
		return "fifo"
	case CtxSteal:
		return "steal"
	case CtxYield:
		return "yield"
	}
	return "unknown"
}

// grantContext hands ctx to p: ownership tables, a fresh key and the
// register-context page mapping in keyed mode, and the LRU touch.
func (k *Kernel) grantContext(p *proc.Process, ctx int) error {
	k.ctxOwner[ctx] = p.PID()
	k.procCtx[p.PID()] = ctx
	k.touchCtx(ctx)
	if k.engine.Config().Mode == dma.ModeKeyed {
		key := k.rng.Uint64()>>dma.KeyShift | 1 // non-zero ~56-bit key
		k.keys[ctx] = key
		if err := k.engine.SetKey(ctx, key); err != nil {
			return err
		}
		// The register-context page is mapped into this process only:
		// possession of the mapping is the access right.
		ctxPA := k.engine.Config().CtxPage(ctx)
		if err := p.AddressSpace().Map(CtxPageVA, ctxPA, vm.Read|vm.Write); err != nil {
			return err
		}
	}
	return nil
}

// revokeContext strips ctx from its owner: ownership cleared, key
// zeroed (keyed mode — stale stores drop silently), ring torn down.
func (k *Kernel) revokeContext(ctx int) {
	if pid := k.ctxOwner[ctx]; pid != 0 {
		delete(k.procCtx, pid)
	}
	k.ctxOwner[ctx] = 0
	k.keys[ctx] = 0
	if k.engine.Config().Mode == dma.ModeKeyed {
		k.engine.SetKey(ctx, 0)
	}
	k.engine.TeardownRing(ctx)
}

// touchCtx records a use of ctx for the LRU steal policy.
func (k *Kernel) touchCtx(ctx int) {
	k.useTick++
	k.ctxUse[ctx] = k.useTick
}

// TouchContext marks p's context as recently used (clients call it per
// batch so the steal policy evicts genuinely idle holders).
func (k *Kernel) TouchContext(p *proc.Process) {
	if c, ok := k.procCtx[p.PID()]; ok {
		k.touchCtx(c)
	}
}

// AcquireContext tries to get a register context for p under the given
// policy. It returns (ctx, true) on success. Under CtxFIFO/CtxYield
// with every context taken it queues p, blocks it, and returns
// (0, false): the caller retries after its next instruction boundary
// (spurious wakeups are allowed, lost wakeups are not — the release
// path always wakes the queue head). CtxSteal always succeeds by
// revoking the least-recently-used holder.
func (k *Kernel) AcquireContext(p *proc.Process, policy CtxPolicy) (int, bool, error) {
	if c, ok := k.procCtx[p.PID()]; ok {
		k.touchCtx(c)
		return c, true, nil
	}
	for ctx := range k.ctxOwner {
		if k.ctxOwner[ctx] != 0 {
			continue
		}
		if err := k.grantContext(p, ctx); err != nil {
			return 0, false, err
		}
		return ctx, true, nil
	}
	if policy == CtxSteal {
		victim := 0
		for ctx := 1; ctx < len(k.ctxUse); ctx++ {
			if k.ctxUse[ctx] < k.ctxUse[victim] {
				victim = ctx
			}
		}
		k.ctr.ctxSteals.Inc()
		k.revokeContext(victim)
		if err := k.grantContext(p, victim); err != nil {
			return 0, false, err
		}
		return victim, true, nil
	}
	// A blocked process only suspends at its next instruction boundary,
	// so its retry loop can re-enter here before ever sleeping — queue
	// it once, but re-arm the block every time.
	queued := false
	for _, w := range k.ctxWaiters {
		if w == p {
			queued = true
			break
		}
	}
	if !queued {
		k.ctxWaiters = append(k.ctxWaiters, p)
		k.ctr.ctxWaits.Inc()
	}
	p.BlockUntil(sim.Never)
	return 0, false, nil
}

// wakeCtxWaiter wakes the head of the context wait queue (after
// interrupt-and-reschedule overhead), if any. Entries whose process has
// since finished or obtained a context are discarded, not woken — a
// wakeup spent on a stale entry would strand the live waiters behind it
// forever.
func (k *Kernel) wakeCtxWaiter() {
	for len(k.ctxWaiters) > 0 {
		w := k.ctxWaiters[0]
		copy(k.ctxWaiters, k.ctxWaiters[1:])
		k.ctxWaiters = k.ctxWaiters[:len(k.ctxWaiters)-1]
		_, holds := k.procCtx[w.PID()]
		if w.State() == proc.Done || holds {
			continue
		}
		wake := k.cpu.Clock().Now() + k.cpu.Config().Freq.Cycles(InterruptWakeupCycles)
		w.Wake(wake)
		return
	}
}

// SetupRing installs a descriptor ring for p in the page at ringVA
// (which p must have mapped read+write), assigns a register context if
// p holds none, and maps the context's doorbell page at RingDoorbellVA.
// Returns the context id. One doorbell store then kicks up to depth
// pending descriptors (dma ring layout: 64-byte slots).
func (k *Kernel) SetupRing(p *proc.Process, ringVA vm.VAddr, depth uint64) (int, error) {
	ctx, ok := k.procCtx[p.PID()]
	if !ok {
		var err error
		if ctx, _, err = k.AssignContext(p); err != nil {
			return 0, err
		}
	}
	as := p.AddressSpace()
	base := as.PageBase(ringVA)
	pte, found := as.Lookup(base)
	if !found || !pte.Prot.Can(vm.Read|vm.Write) {
		return 0, fmt.Errorf("kernel: SetupRing: %v not mapped read+write", ringVA)
	}
	if err := k.engine.SetupRing(ctx, pte.Frame, depth); err != nil {
		return 0, err
	}
	// The doorbell page is mapped into this process only; like the
	// register-context page, possession of the mapping is the right.
	db := k.engine.Config().RingPage(ctx)
	if err := as.Map(RingDoorbellVA, db, vm.Read|vm.Write); err != nil {
		return 0, err
	}
	k.touchCtx(ctx)
	return ctx, nil
}

// RegisterRingBuffer registers pages of p's buffer at va as extents
// descriptors on p's ring may reference, and returns their physical
// frames (the addresses the client writes into descriptor Src/Dst
// slots). Remote-mapped pages are passed through unregistered: a remote
// destination is validated by the remote window itself, exactly like a
// shadow-initiated remote transfer.
func (k *Kernel) RegisterRingBuffer(p *proc.Process, va vm.VAddr, pages int) ([]phys.Addr, error) {
	ctx, ok := k.procCtx[p.PID()]
	if !ok {
		return nil, fmt.Errorf("kernel: RegisterRingBuffer: process holds no register context")
	}
	as := p.AddressSpace()
	ps := k.PageSize()
	cfg := k.engine.Config()
	frames := make([]phys.Addr, 0, pages)
	for i := 0; i < pages; i++ {
		pva := as.PageBase(va + vm.VAddr(uint64(i)*ps))
		pte, found := as.Lookup(pva)
		if !found {
			return nil, fmt.Errorf("kernel: RegisterRingBuffer: %v not mapped", pva)
		}
		if cfg.RemoteBase != 0 && pte.Frame >= cfg.RemoteBase {
			frames = append(frames, pte.Frame)
			continue
		}
		if !pte.Prot.Can(vm.Read | vm.Write) {
			return nil, fmt.Errorf("kernel: RegisterRingBuffer: %v not read+write", pva)
		}
		if err := k.engine.RingAllow(ctx, pte.Frame, ps); err != nil {
			return nil, err
		}
		frames = append(frames, pte.Frame)
	}
	return frames, nil
}
