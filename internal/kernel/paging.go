package kernel

// Virtual-address DMA support: the kernel side of internal/iommu. The
// kernel owns the device page tables — user code never maps a device
// translation directly; it asks via the SysIOMap/SysIOUnmap/SysIOPin
// syscalls (kernel.go) or the warmed-template helpers below — and it
// implements dma.FaultResolver, the service the engine calls when a
// transfer faults mid-flight.
//
// Two regimes:
//
//   - Pager disabled (default): every MapIO is permanently resident.
//     ResolveFault on a mapped page returns instantly (the fault was an
//     IOTLB-level race, already healed); on an unmapped page it returns
//     dma.ErrFaultPending, parking the transfer until someone maps the
//     page and calls Engine.ResumeFaulted — the manual demand-paging
//     path the snapshot-fidelity tests drive.
//
//   - Pager enabled (EnablePager): at most `budget` device pages are
//     resident at once. MapIO registers a page; making it resident may
//     evict the least-recently-used unpinned resident page
//     (iommu.Unmap — which also invalidates its IOTLB entries).
//     ResolveFault pages the victim's frame back in after a fixed
//     page-in latency. Pins (SysIOPin / the engine's pin policy) make
//     pages ineligible for eviction. Eviction order is deterministic:
//     strictly (lastUse, seq)-minimal among unpinned residents.
//
// All pager state is pure data keyed by (ctx, deviceVA) — no pointers
// into process address spaces — so it snapshots by value and folds into
// machine.Fingerprint through PagerStateHash.

import (
	"fmt"

	"uldma/internal/dma"
	"uldma/internal/iommu"
	"uldma/internal/obs"
	"uldma/internal/phys"
	"uldma/internal/proc"
	"uldma/internal/sim"
	"uldma/internal/vm"
)

// pagerKey names one device page: translation context + page-aligned
// device virtual address.
type pagerKey struct {
	ctx int
	va  uint64
}

// pagerPage is the pager's record of one registered device page.
type pagerPage struct {
	frame    phys.Addr
	prot     vm.Prot
	resident bool
	pinned   int    // pin count; >0 blocks eviction
	lastUse  uint64 // pager tick of last touch (resident pages only)
	seq      uint64 // registration order, the lastUse tiebreak
}

// pagerState is the kernel's paging/eviction model. Not a *Stats
// struct: the counters are obs cells registered via
// RegisterPagerMetrics.
type pagerState struct {
	enabled  bool
	budget   int      // max resident device pages (0 with enabled = unlimited)
	pageIn   sim.Time // latency charged per page-in
	pages    map[pagerKey]*pagerPage
	resident int
	tick     uint64 // LRU clock
	seq      uint64 // registration counter

	evictions obs.Counter
	pageIns   obs.Counter
	pins      obs.Counter
}

// SetIOMMU attaches the machine's IOMMU. The machine layer calls it
// during assembly, before any MapIO.
func (k *Kernel) SetIOMMU(io *iommu.IOMMU) {
	k.iommu = io
	if k.pager.pages == nil {
		k.pager.pages = make(map[pagerKey]*pagerPage)
	}
}

// IOMMU returns the attached IOMMU, or nil.
func (k *Kernel) IOMMU() *iommu.IOMMU { return k.iommu }

// EnablePager turns on the paging/eviction model: at most budget device
// pages resident, page-ins charged pageInTime. Must be called before
// traffic; enabling it re-registers already-mapped pages as resident.
func (k *Kernel) EnablePager(budget int, pageInTime sim.Time) error {
	if k.iommu == nil {
		return fmt.Errorf("kernel: EnablePager: no IOMMU attached")
	}
	if budget < 1 {
		return fmt.Errorf("kernel: EnablePager: budget %d", budget)
	}
	k.pager.enabled = true
	k.pager.budget = budget
	k.pager.pageIn = pageInTime
	return nil
}

// PagerEnabled reports whether the eviction model is on.
func (k *Kernel) PagerEnabled() bool { return k.pager.enabled }

// ResidentPages returns the pager's resident count (0 when disabled).
func (k *Kernel) ResidentPages() int { return k.pager.resident }

// RegisterPagerMetrics registers the pager's cells. The machine calls
// this only on IOMMU-equipped worlds, keeping other registry dumps
// byte-identical.
func (k *Kernel) RegisterPagerMetrics(r *obs.Registry) {
	r.RegisterCounter("kernel.pager_evictions", &k.pager.evictions)
	r.RegisterCounter("kernel.pager_page_ins", &k.pager.pageIns)
	r.RegisterCounter("kernel.pager_pins", &k.pager.pins)
}

// MapIO installs a device translation: ctx's device VA va -> frame with
// prot. With the pager disabled the mapping is immediately and
// permanently resident. With it enabled the page is registered and made
// resident, evicting an LRU victim if the budget is full.
func (k *Kernel) MapIO(ctx int, va uint64, frame phys.Addr, prot vm.Prot) error {
	if k.iommu == nil {
		return fmt.Errorf("kernel: MapIO: no IOMMU attached")
	}
	base := va &^ (k.PageSize() - 1)
	if !k.pager.enabled {
		return k.iommu.Map(ctx, base, frame, prot)
	}
	key := pagerKey{ctx: ctx, va: base}
	pg := k.pager.pages[key]
	if pg == nil {
		k.pager.seq++
		pg = &pagerPage{seq: k.pager.seq}
		k.pager.pages[key] = pg
	}
	pg.frame, pg.prot = frame, prot
	if pg.resident {
		// Re-map in place (frame or protection change).
		return k.iommu.Map(ctx, base, frame, prot)
	}
	return k.makeResident(key, pg)
}

// UnmapIO removes a device translation (and, pager enabled, forgets the
// page entirely). Unmapping a pinned page is refused.
func (k *Kernel) UnmapIO(ctx int, va uint64) error {
	if k.iommu == nil {
		return fmt.Errorf("kernel: UnmapIO: no IOMMU attached")
	}
	base := va &^ (k.PageSize() - 1)
	if k.pager.enabled {
		key := pagerKey{ctx: ctx, va: base}
		if pg := k.pager.pages[key]; pg != nil {
			if pg.pinned > 0 {
				return fmt.Errorf("kernel: UnmapIO: device page ctx=%d va=%#x is pinned", ctx, base)
			}
			if pg.resident {
				k.pager.resident--
			}
			delete(k.pager.pages, key)
		}
	}
	return k.iommu.Unmap(ctx, base)
}

// MapIOAS is the virtual-address analogue of MapShadowAS: it wires the
// already-mapped user page at va for IOMMU-translated initiation. The
// device VA is the user VA itself (masked to MemBits) — the identity
// convention lets unchanged protocol instruction sequences initiate
// through the VA window — and the user-visible shadow alias ShadowVA(va)
// points at the engine's VA window instead of the physical shadow
// window, so a protocol store to shadow(v) carries a device VIRTUAL
// address the engine translates at walk time.
func (k *Kernel) MapIOAS(as *vm.AddressSpace, ctx int, va vm.VAddr) error {
	if k.iommu == nil {
		return fmt.Errorf("kernel: MapIOAS: no IOMMU attached")
	}
	base := as.PageBase(va)
	pte, ok := as.Lookup(base)
	if !ok {
		return fmt.Errorf("kernel: MapIOAS: %v not mapped", va)
	}
	cfg := k.engine.Config()
	devVA := uint64(base) & (uint64(1)<<cfg.MemBits - 1)
	prot := pte.Prot
	if cfg.RemoteBase != 0 && pte.Frame >= cfg.RemoteBase {
		// Same rule as MapShadowAS: remote destinations must also accept
		// the protocol's status loads.
		prot = vm.Read | vm.Write
	}
	if err := k.MapIO(ctx, devVA, pte.Frame, prot); err != nil {
		return err
	}
	return as.Map(ShadowVA(base), cfg.VAShadow(devVA, ctx), prot)
}

// makeResident brings a registered page in, evicting if the budget is
// full. The caller has already updated pg.frame/prot.
func (k *Kernel) makeResident(key pagerKey, pg *pagerPage) error {
	if k.pager.resident >= k.pager.budget {
		if err := k.evictOne(); err != nil {
			return err
		}
	}
	if err := k.iommu.Map(key.ctx, key.va, pg.frame, pg.prot); err != nil {
		return err
	}
	pg.resident = true
	k.pager.resident++
	k.touch(pg)
	return nil
}

// evictOne removes the (lastUse, seq)-minimal unpinned resident page.
func (k *Kernel) evictOne() error {
	var vk pagerKey
	var victim *pagerPage
	for key, pg := range k.pager.pages {
		if !pg.resident || pg.pinned > 0 {
			continue
		}
		if victim == nil || pg.lastUse < victim.lastUse ||
			(pg.lastUse == victim.lastUse && pg.seq < victim.seq) {
			vk, victim = key, pg
		}
	}
	if victim == nil {
		return fmt.Errorf("kernel: pager: all %d resident device pages pinned", k.pager.resident)
	}
	if err := k.iommu.Unmap(vk.ctx, vk.va); err != nil {
		return err
	}
	victim.resident = false
	k.pager.resident--
	k.pager.evictions.Inc()
	return nil
}

func (k *Kernel) touch(pg *pagerPage) {
	k.pager.tick++
	pg.lastUse = k.pager.tick
}

// ResolveFault implements dma.FaultResolver: make (ctx, va) resident.
// Pager disabled: a mapped page resolves instantly (the translation
// exists; the fault was transient), an unmapped one returns
// dma.ErrFaultPending so the engine parks the transfer for
// ResumeFaulted. Pager enabled: page the registered frame back in after
// the page-in latency, evicting if necessary.
func (k *Kernel) ResolveFault(ctx int, va uint64, write bool) (sim.Time, error) {
	if k.iommu == nil {
		return 0, fmt.Errorf("kernel: ResolveFault: no IOMMU attached")
	}
	base := va &^ (k.PageSize() - 1)
	if !k.pager.enabled {
		if _, ok := k.iommu.Lookup(ctx, base); ok {
			return 0, nil
		}
		return 0, dma.ErrFaultPending
	}
	key := pagerKey{ctx: ctx, va: base}
	pg := k.pager.pages[key]
	if pg == nil {
		k.ctr.faults.Inc()
		return 0, fmt.Errorf("kernel: device page ctx=%d va=%#x never mapped", ctx, base)
	}
	if write && !pg.prot.Can(vm.Write) {
		k.ctr.faults.Inc()
		return 0, fmt.Errorf("kernel: device page ctx=%d va=%#x not writable", ctx, base)
	}
	if pg.resident {
		k.touch(pg)
		return 0, nil
	}
	if err := k.makeResident(key, pg); err != nil {
		k.ctr.faults.Inc()
		return 0, err
	}
	k.pager.pageIns.Inc()
	return k.pager.pageIn, nil
}

// PinRange implements dma.FaultResolver: pre-fault and pin every page
// of [va, va+size). Pinned pages cannot be evicted. The latency is the
// sum of page-ins incurred. On failure nothing stays pinned.
func (k *Kernel) PinRange(ctx int, va, size uint64, write bool) (sim.Time, error) {
	if k.iommu == nil {
		return 0, fmt.Errorf("kernel: PinRange: no IOMMU attached")
	}
	ps := k.PageSize()
	first := va &^ (ps - 1)
	var total sim.Time
	for base := first; base < va+size; base += ps {
		lat, err := k.pinOne(ctx, base, write)
		if err != nil {
			for b := first; b < base; b += ps {
				k.unpinOne(ctx, b)
			}
			return 0, err
		}
		total += lat
	}
	return total, nil
}

func (k *Kernel) pinOne(ctx int, base uint64, write bool) (sim.Time, error) {
	if !k.pager.enabled {
		pte, ok := k.iommu.Lookup(ctx, base)
		if !ok {
			return 0, fmt.Errorf("kernel: PinRange: device page ctx=%d va=%#x not mapped", ctx, base)
		}
		if write && !pte.Prot.Can(vm.Write) {
			return 0, fmt.Errorf("kernel: PinRange: device page ctx=%d va=%#x not writable", ctx, base)
		}
		k.pager.pins.Inc()
		return 0, nil
	}
	lat, err := k.ResolveFault(ctx, base, write)
	if err != nil {
		return 0, err
	}
	k.pager.pages[pagerKey{ctx: ctx, va: base}].pinned++
	k.pager.pins.Inc()
	return lat, nil
}

// UnpinRange implements dma.FaultResolver: release the pins PinRange
// took on [va, va+size).
func (k *Kernel) UnpinRange(ctx int, va, size uint64) {
	if k.iommu == nil {
		return
	}
	ps := k.PageSize()
	for base := va &^ (ps - 1); base < va+size; base += ps {
		k.unpinOne(ctx, base)
	}
}

func (k *Kernel) unpinOne(ctx int, base uint64) {
	if !k.pager.enabled {
		return
	}
	if pg := k.pager.pages[pagerKey{ctx: ctx, va: base}]; pg != nil && pg.pinned > 0 {
		pg.pinned--
	}
}

// --- syscall bodies (dispatched from kernel.go) ---

// sysIOMap: the caller asks the kernel to make its user page at va
// device-addressable at devva, under its own DMA context. The kernel
// translates va through the process table (one software
// virtual_to_physical, same cost as Figure 1's) and installs the
// device PTE — the once-per-page setup cost of virtual-address DMA,
// analogous to MapShadow for the physical schemes.
func (k *Kernel) sysIOMap(p *proc.Process, devva uint64, va vm.VAddr) (uint64, error) {
	if k.iommu == nil {
		return dma.StatusFailure, fmt.Errorf("kernel: SysIOMap: machine has no IOMMU")
	}
	ctx := 0
	if c, ok := k.procCtx[p.PID()]; ok {
		ctx = c
	}
	k.cpu.Spin(k.cfg.TranslateCycles)
	as := p.AddressSpace()
	base := as.PageBase(va)
	pte, ok := as.Lookup(base)
	if !ok {
		k.ctr.faults.Inc()
		return dma.StatusFailure, &vm.Fault{VA: va, Access: vm.AccessLoad, Kind: vm.FaultUnmapped, ASID: as.ASID()}
	}
	if err := k.MapIO(ctx, devva, pte.Frame, pte.Prot); err != nil {
		return dma.StatusFailure, err
	}
	return 0, nil
}

// sysIOUnmap removes the caller's device translation at devva.
func (k *Kernel) sysIOUnmap(p *proc.Process, devva uint64) (uint64, error) {
	if k.iommu == nil {
		return dma.StatusFailure, fmt.Errorf("kernel: SysIOUnmap: machine has no IOMMU")
	}
	ctx := 0
	if c, ok := k.procCtx[p.PID()]; ok {
		ctx = c
	}
	if err := k.UnmapIO(ctx, devva); err != nil {
		return dma.StatusFailure, err
	}
	return 0, nil
}

// sysIOPin pins [devva, devva+size) for the caller's context. Page-in
// latency puts the caller to sleep (the kernel-assisted-pin policy's
// up-front cost) rather than spinning the CPU.
func (k *Kernel) sysIOPin(p *proc.Process, devva, size uint64) (uint64, error) {
	if k.iommu == nil {
		return dma.StatusFailure, fmt.Errorf("kernel: SysIOPin: machine has no IOMMU")
	}
	ctx := 0
	if c, ok := k.procCtx[p.PID()]; ok {
		ctx = c
	}
	// write=false: a pin guarantees residency; direction-specific
	// protection is still enforced at translate time.
	lat, err := k.PinRange(ctx, devva, size, false)
	if err != nil {
		return dma.StatusFailure, err
	}
	if lat > 0 {
		p.BlockUntil(k.cpu.Clock().Now() + lat)
	}
	return 0, nil
}

// sysIOUnpin releases a SysIOPin.
func (k *Kernel) sysIOUnpin(p *proc.Process, devva, size uint64) (uint64, error) {
	if k.iommu == nil {
		return dma.StatusFailure, fmt.Errorf("kernel: SysIOUnpin: machine has no IOMMU")
	}
	ctx := 0
	if c, ok := k.procCtx[p.PID()]; ok {
		ctx = c
	}
	k.UnpinRange(ctx, devva, size)
	return 0, nil
}

// PagerStateHash folds the pager's complete state into one word.
// It returns 0 iff no IOMMU is attached AND the pager map is empty —
// i.e. exactly the pre-existing worlds — so machine.Fingerprint can mix
// it conditionally without perturbing any existing fingerprint. The
// per-page fold is commutative (map iteration order must not matter).
func (k *Kernel) PagerStateHash() uint64 {
	if k.iommu == nil && len(k.pager.pages) == 0 {
		return 0
	}
	h := uint64(0x6b65726e70616765) // "kernpage"
	mix := func(v uint64) {
		h ^= v
		h *= 0x100000001b3
		h ^= h >> 29
	}
	if k.pager.enabled {
		mix(1)
	} else {
		mix(0)
	}
	mix(uint64(k.pager.budget))
	mix(uint64(k.pager.pageIn))
	mix(uint64(k.pager.resident))
	mix(k.pager.tick)
	mix(k.pager.seq)
	mix(k.pager.evictions.Value())
	mix(k.pager.pageIns.Value())
	mix(k.pager.pins.Value())
	var pagesFold uint64
	for key, pg := range k.pager.pages {
		ph := uint64(0x9e3779b97f4a7c15)
		pmix := func(v uint64) {
			ph ^= v
			ph *= 0x100000001b3
			ph ^= ph >> 29
		}
		pmix(uint64(key.ctx))
		pmix(key.va)
		pmix(uint64(pg.frame))
		pmix(uint64(pg.prot))
		var flags uint64
		if pg.resident {
			flags = 1
		}
		pmix(flags)
		pmix(uint64(pg.pinned))
		pmix(pg.lastUse)
		pmix(pg.seq)
		pagesFold += ph // commutative across map order
	}
	mix(pagesFold)
	return h
}
