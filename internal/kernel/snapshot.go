package kernel

// World snapshot/restore support (see internal/machine). The kernel's
// mutable state is bookkeeping — the ASID and frame allocators, the
// register-context ownership tables, the key RNG position, the
// counters — plus three installation flags (SHRIMP-2 hook, FLASH hook,
// PAL DMA routine) that a clone re-enacts against its own runner and
// engine rather than sharing closures bound to the origin.

import (
	"fmt"

	"uldma/internal/obs"
	"uldma/internal/phys"
	"uldma/internal/proc"
	"uldma/internal/sim"
)

// Snapshot captures a Kernel's mutable state. See Kernel.Snapshot.
type Snapshot struct {
	rngState  uint64
	nextASID  int
	nextFrame phys.Addr
	ctxOwner  []proc.PID
	keys      []uint64
	procCtx   map[proc.PID]int
	ctxUse    []uint64
	useTick   uint64
	shrimp2   bool
	flash     bool
	palDMA    bool
	ctr       counters

	// Pager state (paging.go). Pages are deep-copied: live records
	// mutate after the snapshot.
	pagerOn       bool
	pagerBudget   int
	pagerPageIn   sim.Time
	pagerResident int
	pagerTick     uint64
	pagerSeq      uint64
	pagerPages    map[pagerKey]pagerPage
	pagerEvict    uint64
	pagerIns      uint64
	pagerPins     uint64
}

// SHRIMP2Hook reports whether the SHRIMP-2 context-switch hook was
// installed at snapshot time (the machine layer re-enables it on
// clones).
func (s *Snapshot) SHRIMP2Hook() bool { return s.shrimp2 }

// FLASHHook reports whether the FLASH context-switch hook was installed
// at snapshot time.
func (s *Snapshot) FLASHHook() bool { return s.flash }

// PALDMAInstalled reports whether the user_level_dma PAL routine was
// installed at snapshot time.
func (s *Snapshot) PALDMAInstalled() bool { return s.palDMA }

// Snapshot captures the kernel's bookkeeping. It fails if any process
// is asleep on a receive-interrupt watch: a watch holds a blocked
// process, which contradicts the quiescence a snapshot requires.
func (k *Kernel) Snapshot() (*Snapshot, error) {
	if len(k.watches) != 0 {
		return nil, fmt.Errorf("kernel: cannot snapshot with %d processes blocked on remote-write watches", len(k.watches))
	}
	if len(k.ctxWaiters) != 0 {
		return nil, fmt.Errorf("kernel: cannot snapshot with %d processes queued for a register context", len(k.ctxWaiters))
	}
	s := &Snapshot{
		rngState:  k.rng.State(),
		nextASID:  k.nextASID,
		nextFrame: k.nextFrame,
		ctxOwner:  append([]proc.PID(nil), k.ctxOwner...),
		keys:      append([]uint64(nil), k.keys...),
		procCtx:   make(map[proc.PID]int, len(k.procCtx)),
		ctxUse:    append([]uint64(nil), k.ctxUse...),
		useTick:   k.useTick,
		shrimp2:   k.shrimp2Hook,
		flash:     k.flashHook,
		palDMA:    k.palDMA,
		ctr:       k.ctr,
	}
	for pid, ctx := range k.procCtx {
		s.procCtx[pid] = ctx
	}
	s.pagerOn = k.pager.enabled
	s.pagerBudget = k.pager.budget
	s.pagerPageIn = k.pager.pageIn
	s.pagerResident = k.pager.resident
	s.pagerTick = k.pager.tick
	s.pagerSeq = k.pager.seq
	s.pagerEvict = k.pager.evictions.Value()
	s.pagerIns = k.pager.pageIns.Value()
	s.pagerPins = k.pager.pins.Value()
	if len(k.pager.pages) > 0 {
		s.pagerPages = make(map[pagerKey]pagerPage, len(k.pager.pages))
		for key, pg := range k.pager.pages {
			s.pagerPages[key] = *pg
		}
	}
	return s, nil
}

// Restore rewinds the kernel's bookkeeping to the snapshot. Hook and
// PAL *installations* are not performed here: for the in-place path
// the runner truncates its hook chains back to the snapshot lengths,
// and for the clone path the machine layer calls EnableSHRIMP2Hook /
// EnableFLASHHook / InstallPALDMA on the clone before restoring, so
// the closures are bound to the clone's own kernel.
func (k *Kernel) Restore(s *Snapshot) error {
	if len(s.ctxOwner) != len(k.ctxOwner) {
		return fmt.Errorf("kernel: restore: snapshot has %d register contexts, kernel has %d", len(s.ctxOwner), len(k.ctxOwner))
	}
	k.rng.SetState(s.rngState)
	k.nextASID = s.nextASID
	k.nextFrame = s.nextFrame
	copy(k.ctxOwner, s.ctxOwner)
	copy(k.keys, s.keys)
	for pid := range k.procCtx {
		delete(k.procCtx, pid)
	}
	for pid, ctx := range s.procCtx {
		k.procCtx[pid] = ctx
	}
	copy(k.ctxUse, s.ctxUse)
	k.useTick = s.useTick
	k.shrimp2Hook = s.shrimp2
	k.flashHook = s.flash
	k.palDMA = s.palDMA
	k.watches = k.watches[:0]
	k.ctxWaiters = k.ctxWaiters[:0]
	k.ctr = s.ctr
	k.pager.enabled = s.pagerOn
	k.pager.budget = s.pagerBudget
	k.pager.pageIn = s.pagerPageIn
	k.pager.resident = s.pagerResident
	k.pager.tick = s.pagerTick
	k.pager.seq = s.pagerSeq
	k.pager.evictions = obs.Counter(s.pagerEvict)
	k.pager.pageIns = obs.Counter(s.pagerIns)
	k.pager.pins = obs.Counter(s.pagerPins)
	for key := range k.pager.pages {
		delete(k.pager.pages, key)
	}
	for key, pg := range s.pagerPages {
		cp := pg
		if k.pager.pages == nil {
			k.pager.pages = make(map[pagerKey]*pagerPage, len(s.pagerPages))
		}
		k.pager.pages[key] = &cp
	}
	return nil
}
