// Package kernel models the operating system: the trap machinery whose
// cost motivates the whole paper, the software virtual_to_physical
// translation of Figure 1, and the setup-time services every user-level
// DMA scheme needs (shadow mappings, register-context assignment, key
// distribution, PAL-code installation).
//
// The crucial boundary the paper draws runs through this package:
//
//   - Setup-time work (mmap of shadow pages, handing out keys and
//     register contexts, installing PAL routines) happens once, through
//     ordinary kernel interfaces — no kernel modification.
//   - The SHRIMP-2 and FLASH schemes additionally need a context-switch
//     hook; those are the EnableSHRIMP2Hook / EnableFLASHHook methods,
//     explicitly marked as the kernel modifications the paper's own
//     methods ("Key-based", "Extended Shadow", "Repeated Passing",
//     "PAL code") never call.
package kernel

import (
	"fmt"

	"uldma/internal/cpu"
	"uldma/internal/dma"
	"uldma/internal/iommu"
	"uldma/internal/obs"
	"uldma/internal/phys"
	"uldma/internal/proc"
	"uldma/internal/sim"
	"uldma/internal/vm"
)

// Syscall numbers.
const (
	// SysNull is an empty system call: trap in, trap out. It is the
	// lmbench-style baseline the paper cites at 1,000-5,000 cycles.
	SysNull = iota
	// SysDMA is Figure 1: translate both addresses, check the range,
	// program the engine's control registers, read back the status.
	SysDMA
	// SysAtomic performs an atomic operation through the kernel (the
	// expensive baseline §3.5 argues against). Args: op, vaddr, operand.
	SysAtomic
	// SysDMAStatus reads the engine's status register: bytes remaining
	// in the most recent transfer (or StatusFailure). It is how a
	// kernel-DMA client polls for completion.
	SysDMAStatus
	// SysDMAWait blocks the calling process until its outstanding
	// transfer completes (the process's register-context transfer, or
	// the engine's last transfer for the kernel path). The process is
	// descheduled; it wakes after completion plus the interrupt-and-
	// reschedule overhead. Returns 0, or StatusFailure when there is
	// nothing to wait on.
	SysDMAWait
	// SysWaitWrite blocks the calling process until remote data arrives
	// in the page containing the given virtual address (the NIC's
	// receive interrupt). Args: vaddr. The caller re-checks its mailbox
	// on return — spurious wakeups are allowed, lost wakeups are not.
	SysWaitWrite
	// SysIOMap installs a device translation for the caller's DMA
	// context: the user page at vaddr becomes device-addressable at
	// devva (see paging.go). Args: devva, vaddr.
	SysIOMap
	// SysIOUnmap removes a device translation. Args: devva.
	SysIOUnmap
	// SysIOPin pre-faults and pins [devva, devva+size) so the pager
	// cannot evict it mid-transfer. Args: devva, size. The caller sleeps
	// through any page-in latency.
	SysIOPin
	// SysIOUnpin releases a SysIOPin. Args: devva, size.
	SysIOUnpin
)

// InterruptWakeupCycles models completion-interrupt delivery plus the
// scheduler putting the sleeping process back on the CPU.
const InterruptWakeupCycles = 800

// Virtual-address layout conventions. The kernel places shadow and
// device mappings at fixed offsets from the data addresses they mirror,
// so user libraries can compute shadow(v) without a lookup — mirroring
// how the real system precomputed shadow pointers at mmap time.
const (
	// ShadowVABase: shadow(v) = ShadowVABase + v.
	ShadowVABase vm.VAddr = 0x1_0000_0000
	// AtomicVABase: atomicShadow(v, op) = AtomicVABase + op<<32 + v.
	AtomicVABase vm.VAddr = 0x10_0000_0000
	// CtxPageVA is where a process's register-context page is mapped.
	CtxPageVA vm.VAddr = 0xC000_0000
)

// ShadowVA returns the user virtual address aliasing va's shadow page.
func ShadowVA(va vm.VAddr) vm.VAddr { return ShadowVABase + va }

// AtomicVA returns the user virtual address performing atomic op on va.
func AtomicVA(va vm.VAddr, op int) vm.VAddr {
	return AtomicVABase + vm.VAddr(uint64(op)<<32) + va
}

// Config sets the kernel cost model (CPU cycles).
type Config struct {
	// SyscallEntryCycles / SyscallExitCycles are the trap overheads;
	// their sum is the empty-syscall cost (lmbench band: 1,000-5,000).
	SyscallEntryCycles int64
	SyscallExitCycles  int64
	// TranslateCycles is one software virtual_to_physical, including the
	// access-rights check.
	TranslateCycles int64
	// CheckSizeCycles is Figure 1's check_size of the whole transfer
	// range.
	CheckSizeCycles int64
	// KeySeed seeds DMA-key generation (deterministic per machine).
	KeySeed uint64
	// UserFrameBase is where the physical frame allocator starts.
	UserFrameBase phys.Addr
}

// Stats counts kernel activity. It is a read-only compatibility view
// over the kernel's obs counter cells (see internal/obs): existing
// callers and experiment outputs keep their shape, while the storage
// participates in the unified metrics registry.
type Stats struct {
	Syscalls    uint64
	DMASyscalls uint64
	Faults      uint64
	CtxWaits    uint64
	CtxSteals   uint64
}

// counters is the kernel's live metric storage. Copied by value into
// snapshots, so it rewinds with the world.
type counters struct {
	syscalls    obs.Counter
	dmaSyscalls obs.Counter
	faults      obs.Counter
	ctxWaits    obs.Counter
	ctxSteals   obs.Counter
}

// Kernel is one node's operating system.
type Kernel struct {
	cfg    Config
	cpu    *cpu.CPU
	mem    *phys.Memory
	engine *dma.Engine
	runner *proc.Runner

	rng       *sim.Rand
	nextASID  int
	nextFrame phys.Addr

	ctxOwner []proc.PID // register context -> owning process (0 = free)
	keys     []uint64   // keys handed out per context (keyed mode)
	procCtx  map[proc.PID]int

	// Context-scheduling state (see ring.go): LRU use stamps for the
	// steal policy and the FIFO queue of processes waiting for a
	// context.
	ctxUse     []uint64
	useTick    uint64
	ctxWaiters []*proc.Process

	shrimp2Hook bool
	flashHook   bool
	palDMA      bool
	watches     []writeWatch
	ctr         counters

	// Virtual-address DMA (paging.go): the machine's IOMMU, if one is
	// configured, and the kernel's device-page residency model.
	iommu *iommu.IOMMU
	pager pagerState

	tr   *obs.Trace
	node int32
}

// writeWatch is one process sleeping until remote data lands in a
// physical range.
type writeWatch struct {
	lo, hi phys.Addr
	p      *proc.Process
}

// New boots a kernel on the given hardware. It installs itself as the
// runner's syscall handler.
func New(cfg Config, c *cpu.CPU, mem *phys.Memory, engine *dma.Engine, runner *proc.Runner) *Kernel {
	k := &Kernel{
		cfg:       cfg,
		cpu:       c,
		mem:       mem,
		engine:    engine,
		runner:    runner,
		rng:       sim.NewRand(cfg.KeySeed ^ 0x9b1ee5c0ffee),
		nextASID:  1,
		nextFrame: cfg.UserFrameBase,
		ctxOwner:  make([]proc.PID, engine.NumContexts()),
		keys:      make([]uint64, engine.NumContexts()),
		procCtx:   make(map[proc.PID]int),
		ctxUse:    make([]uint64, engine.NumContexts()),
	}
	runner.SetSyscallHandler(k)
	// Ordinary process teardown (not a context-switch modification):
	// reclaim the register context and key when a process exits.
	runner.AddExitHook(func(p *proc.Process) { k.ReleaseContext(p) })
	return k
}

// Stats returns a snapshot of the counters.
func (k *Kernel) Stats() Stats {
	return Stats{
		Syscalls:    k.ctr.syscalls.Value(),
		DMASyscalls: k.ctr.dmaSyscalls.Value(),
		Faults:      k.ctr.faults.Value(),
		CtxWaits:    k.ctr.ctxWaits.Value(),
		CtxSteals:   k.ctr.ctxSteals.Value(),
	}
}

// RegisterMetrics registers the kernel's counters with the machine-wide
// registry.
func (k *Kernel) RegisterMetrics(r *obs.Registry) {
	r.RegisterCounter("kernel.syscalls", &k.ctr.syscalls)
	r.RegisterCounter("kernel.dma_syscalls", &k.ctr.dmaSyscalls)
	r.RegisterCounter("kernel.faults", &k.ctr.faults)
	r.RegisterCounter("kernel.ctx_waits", &k.ctr.ctxWaits)
	r.RegisterCounter("kernel.ctx_steals", &k.ctr.ctxSteals)
}

// SetTracer attaches (or detaches, with nil) the structured trace
// spine. Enabled, every syscall emits a CatSyscall span covering
// entry to exit.
func (k *Kernel) SetTracer(t *obs.Trace, node int32) {
	k.tr = t
	k.node = node
}

// syscallName maps a syscall number to its static trace label.
// Returned strings are constants: the hot path never formats.
func syscallName(num int) string {
	switch num {
	case SysNull:
		return "sys_null"
	case SysDMA:
		return "sys_dma"
	case SysAtomic:
		return "sys_atomic"
	case SysDMAStatus:
		return "sys_dma_status"
	case SysDMAWait:
		return "sys_dma_wait"
	case SysWaitWrite:
		return "sys_wait_write"
	case SysIOMap:
		return "sys_io_map"
	case SysIOUnmap:
		return "sys_io_unmap"
	case SysIOPin:
		return "sys_io_pin"
	case SysIOUnpin:
		return "sys_io_unpin"
	}
	return "sys_unknown"
}

// RNGState exposes the key RNG's position for the machine fingerprint:
// SplitMix64 advances its state by a constant per draw, so in steady
// state the delta per iteration is constant.
func (k *Kernel) RNGState() uint64 { return k.rng.State() }

// Engine returns the DMA engine the kernel manages.
func (k *Kernel) Engine() *dma.Engine { return k.engine }

// PageSize returns the system page size.
func (k *Kernel) PageSize() uint64 { return k.engine.Config().PageSize }

// NewAddressSpace creates a fresh address space with a unique ASID.
func (k *Kernel) NewAddressSpace() *vm.AddressSpace {
	as := vm.NewAddressSpace(k.nextASID, k.PageSize())
	k.nextASID++
	return as
}

// AllocPage allocates a physical frame and maps it at va with prot.
// It returns the frame so tests can inspect physical contents.
func (k *Kernel) AllocPage(as *vm.AddressSpace, va vm.VAddr, prot vm.Prot) (phys.Addr, error) {
	frame := k.nextFrame
	if uint64(frame)+k.PageSize() > uint64(k.mem.Size()) {
		return 0, fmt.Errorf("kernel: out of physical memory at %v", frame)
	}
	k.nextFrame += phys.Addr(k.PageSize())
	if err := as.Map(va, frame, prot); err != nil {
		return 0, err
	}
	return frame, nil
}

// MapFrame maps an existing physical frame (shared memory, device page)
// at va.
func (k *Kernel) MapFrame(as *vm.AddressSpace, va vm.VAddr, frame phys.Addr, prot vm.Prot) error {
	return as.Map(va, frame, prot)
}

// MapShadow creates the shadow alias for the already-mapped page at va:
// ShadowVA(va) -> engine shadow window encoding of the page's frame
// (with the process's context id burned into the address bits in
// extended mode). The shadow page inherits the real page's protection —
// a process can only pass physical addresses it could access anyway.
// This is the once-per-page setup cost of every user-level scheme.
func (k *Kernel) MapShadow(p *proc.Process, va vm.VAddr) error {
	ctx := 0
	if c, ok := k.procCtx[p.PID()]; ok {
		ctx = c
	}
	return k.MapShadowAS(p.AddressSpace(), ctx, va)
}

// MapShadowAS is MapShadow for an address space with no process
// attached yet: warmed scenario templates (internal/core) build and
// map their spaces once, snapshot the world, and only spawn processes
// into them per run. ctx is the register-context id to burn into the
// shadow encoding — 0 when the eventual owner holds no context, which
// is always the case in repeated-passing mode.
func (k *Kernel) MapShadowAS(as *vm.AddressSpace, ctx int, va vm.VAddr) error {
	base := as.PageBase(va)
	pte, ok := as.Lookup(base)
	if !ok {
		return fmt.Errorf("kernel: MapShadow: %v not mapped", va)
	}
	cfg := k.engine.Config()
	prot := pte.Prot
	if cfg.RemoteBase != 0 && pte.Frame >= cfg.RemoteBase {
		// Remote pages are write-only (the fabric has no remote reads),
		// but their shadow alias must also be loadable: protocol status
		// loads on shadow(dst) — e.g. the 5th access of repeated
		// passing — read engine state, never remote data.
		prot = vm.Read | vm.Write
	}
	return as.Map(ShadowVA(base), cfg.Shadow(pte.Frame, ctx), prot)
}

// MapAtomic creates the atomic-operation aliases for the page at va:
// one mapping per operation code. Local pages need read+write; remote
// pages (which are write-only by construction) need only write — the
// read half of the RMW happens on the remote node, not through the
// local mapping.
func (k *Kernel) MapAtomic(p *proc.Process, va vm.VAddr) error {
	as := p.AddressSpace()
	base := as.PageBase(va)
	pte, ok := as.Lookup(base)
	if !ok {
		return fmt.Errorf("kernel: MapAtomic: %v not mapped", va)
	}
	need := vm.Read | vm.Write
	if cfg := k.engine.Config(); cfg.RemoteBase != 0 && pte.Frame >= cfg.RemoteBase {
		need = vm.Write
	}
	if !pte.Prot.Can(need) {
		return fmt.Errorf("kernel: MapAtomic: %v needs %v", va, need)
	}
	for _, op := range []int{dma.AtomicAdd, dma.AtomicSwap, dma.AtomicCAS} {
		pa := k.engine.Config().AtomicShadow(pte.Frame, op)
		if err := as.Map(AtomicVA(base, op), pa, vm.Read|vm.Write); err != nil {
			return err
		}
	}
	return nil
}

// MaterializeTable encodes p's current mappings as a hardware-walkable
// three-level page table in physical memory, allocating table pages
// from the kernel's frame pool. Debuggers and the calibration tests use
// it; the simulator itself executes against the architectural map.
func (k *Kernel) MaterializeTable(p *proc.Process) (*vm.MaterializedTable, error) {
	alloc := func() (phys.Addr, error) {
		frame := k.nextFrame
		if uint64(frame)+k.PageSize() > uint64(k.mem.Size()) {
			return 0, fmt.Errorf("kernel: out of physical memory for page tables")
		}
		k.nextFrame += phys.Addr(k.PageSize())
		return frame, nil
	}
	return vm.Materialize(p.AddressSpace(), k.mem, alloc)
}

// MapRemote maps the page at va in p's address space onto another
// node's memory window: node's physical page at remoteOff. Stores to
// the page become single-word remote writes through the NIC; the page's
// shadow alias (create it with MapShadow afterwards) names the remote
// page as a DMA destination. Remote pages are write-only — the fabric
// does not implement remote reads.
func (k *Kernel) MapRemote(p *proc.Process, va vm.VAddr, node int, remoteOff phys.Addr) error {
	cfg := k.engine.Config()
	if cfg.RemoteBase == 0 {
		return fmt.Errorf("kernel: machine has no remote window")
	}
	if uint64(remoteOff)%k.PageSize() != 0 {
		return fmt.Errorf("kernel: MapRemote offset %v not page-aligned", remoteOff)
	}
	pa := cfg.RemoteAddr(node, remoteOff)
	if uint64(pa) >= 1<<cfg.MemBits {
		return fmt.Errorf("kernel: node %d offset %v exceeds the remote window", node, remoteOff)
	}
	return p.AddressSpace().Map(va, pa, vm.Write)
}

// AssignContext reserves a DMA register context for p, maps the
// context's page into p's address space at CtxPageVA (keyed mode), and
// returns (ctx, key). In extended mode the key is zero and only the
// context id matters — it is burned into subsequent MapShadow calls. If
// every context is taken the process must fall back to kernel-level DMA,
// exactly as §3.2 prescribes.
func (k *Kernel) AssignContext(p *proc.Process) (int, uint64, error) {
	if c, ok := k.procCtx[p.PID()]; ok {
		return c, k.keys[c], nil // idempotent
	}
	for ctx := range k.ctxOwner {
		if k.ctxOwner[ctx] != 0 {
			continue
		}
		if err := k.grantContext(p, ctx); err != nil {
			return 0, 0, err
		}
		return ctx, k.keys[ctx], nil
	}
	return 0, 0, fmt.Errorf("kernel: no free DMA register context (have %d)", len(k.ctxOwner))
}

// ReleaseContext frees p's register context (at process exit, or
// voluntarily under the cooperative-yield policy). The context's ring is
// torn down and the head of the context wait queue, if any, is woken.
func (k *Kernel) ReleaseContext(p *proc.Process) {
	ctx, ok := k.procCtx[p.PID()]
	if !ok {
		return
	}
	k.revokeContext(ctx)
	k.wakeCtxWaiter()
}

// ContextOf returns the register context assigned to p, if any.
func (k *Kernel) ContextOf(p *proc.Process) (int, bool) {
	c, ok := k.procCtx[p.PID()]
	return c, ok
}

// MapOut installs a SHRIMP-1 page mapping after checking the process
// owns the source page.
func (k *Kernel) MapOut(p *proc.Process, srcVA vm.VAddr, dstPA phys.Addr) error {
	as := p.AddressSpace()
	base := as.PageBase(srcVA)
	pte, ok := as.Lookup(base)
	if !ok || !pte.Prot.Can(vm.Read|vm.Write) {
		return fmt.Errorf("kernel: MapOut: %v not owned read+write", srcVA)
	}
	return k.engine.MapOut(pte.Frame, dstPA)
}

// --- kernel modifications required by PRIOR work (comparators only) ---

// EnableSHRIMP2Hook adds the context-switch invalidation SHRIMP-2
// requires: "the operating system must invalidate any partially
// initiated user-level DMA transfer on every context switch". Calling
// this models shipping an OS patch — the paper's methods never need it.
func (k *Kernel) EnableSHRIMP2Hook() {
	if k.shrimp2Hook {
		return
	}
	k.shrimp2Hook = true
	k.runner.AddSwitchHook(func(_, _ *proc.Process) {
		k.engine.AbortPending()
	})
}

// EnableFLASHHook adds FLASH's context-switch hook: the kernel informs
// the engine of the running process's identity at every switch.
func (k *Kernel) EnableFLASHHook() {
	if k.flashHook {
		return
	}
	k.flashHook = true
	k.engine.SetPIDTracking(true)
	k.runner.AddSwitchHook(func(_, to *proc.Process) {
		k.engine.SetCurrentPID(int(to.PID()))
	})
}

// KernelModified reports whether either prior-work hook is installed —
// the property the paper's methods keep false.
func (k *Kernel) KernelModified() bool { return k.shrimp2Hook || k.flashHook }

// --- PAL code (§2.7) ---

// PALUserDMA is the name of the installed user-level DMA PAL call.
const PALUserDMA = "user_level_dma"

// InstallPALDMA installs the user_level_dma PAL routine: the two-access
// shadow sequence executed uninterrupted in PAL mode. A super-user
// installs it once; afterwards any process may invoke it — no kernel
// modification involved.
func (k *Kernel) InstallPALDMA() {
	k.palDMA = true
	k.runner.InstallPAL(PALUserDMA, func(p *proc.Process, args []uint64) (uint64, error) {
		if len(args) != 3 {
			return dma.StatusFailure, fmt.Errorf("kernel: %s wants (vsrc, vdst, size)", PALUserDMA)
		}
		vsrc, vdst, size := vm.VAddr(args[0]), vm.VAddr(args[1]), args[2]
		as := p.AddressSpace()
		// STORE size TO shadow(vdestination)
		if err := k.cpu.Store(as, ShadowVA(vdst), phys.Size64, size); err != nil {
			return dma.StatusFailure, err
		}
		// LOAD return_status FROM shadow(vsource)
		return k.cpu.Load(as, ShadowVA(vsrc), phys.Size64)
	})
}

// --- syscall dispatch ---

// Syscall implements proc.SyscallHandler: Figure 1's uninterruptible
// kernel path, with the trap costs charged explicitly.
func (k *Kernel) Syscall(p *proc.Process, num int, args []uint64) (uint64, error) {
	k.ctr.syscalls.Inc()
	start := k.cpu.Clock().Now()
	k.cpu.Spin(k.cfg.SyscallEntryCycles)
	ret, err := k.dispatch(p, num, args)
	k.cpu.Spin(k.cfg.SyscallExitCycles)
	if k.tr != nil {
		end := k.cpu.Clock().Now()
		k.tr.Span(start, end-start, obs.CatSyscall, syscallName(num),
			k.node, int32(p.PID()), uint64(num), ret, 0)
	}
	return ret, err
}

func (k *Kernel) dispatch(p *proc.Process, num int, args []uint64) (uint64, error) {
	switch num {
	case SysNull:
		return 0, nil
	case SysDMA:
		if len(args) != 3 {
			return dma.StatusFailure, fmt.Errorf("kernel: SysDMA wants (vsrc, vdst, size)")
		}
		return k.sysDMA(p, vm.VAddr(args[0]), vm.VAddr(args[1]), args[2])
	case SysAtomic:
		if len(args) != 3 {
			return 0, fmt.Errorf("kernel: SysAtomic wants (op, vaddr, operand)")
		}
		return k.sysAtomic(p, int(args[0]), vm.VAddr(args[1]), args[2])
	case SysDMAStatus:
		return k.cpu.PhysLoad(k.engine.Config().ControlBase+dma.RegStatus, phys.Size64)
	case SysDMAWait:
		return k.sysDMAWait(p)
	case SysWaitWrite:
		if len(args) != 1 {
			return 0, fmt.Errorf("kernel: SysWaitWrite wants (vaddr)")
		}
		return k.sysWaitWrite(p, vm.VAddr(args[0]))
	case SysIOMap:
		if len(args) != 2 {
			return dma.StatusFailure, fmt.Errorf("kernel: SysIOMap wants (devva, vaddr)")
		}
		return k.sysIOMap(p, args[0], vm.VAddr(args[1]))
	case SysIOUnmap:
		if len(args) != 1 {
			return dma.StatusFailure, fmt.Errorf("kernel: SysIOUnmap wants (devva)")
		}
		return k.sysIOUnmap(p, args[0])
	case SysIOPin:
		if len(args) != 2 {
			return dma.StatusFailure, fmt.Errorf("kernel: SysIOPin wants (devva, size)")
		}
		return k.sysIOPin(p, args[0], args[1])
	case SysIOUnpin:
		if len(args) != 2 {
			return dma.StatusFailure, fmt.Errorf("kernel: SysIOUnpin wants (devva, size)")
		}
		return k.sysIOUnpin(p, args[0], args[1])
	default:
		return 0, fmt.Errorf("kernel: unknown syscall %d", num)
	}
}

// sysDMA is Figure 1 verbatim.
func (k *Kernel) sysDMA(p *proc.Process, vsrc, vdst vm.VAddr, size uint64) (uint64, error) {
	k.ctr.dmaSyscalls.Inc()
	as := p.AddressSpace()

	// psource = virtual_to_physical(vsource)
	k.cpu.Spin(k.cfg.TranslateCycles)
	psrc, err := as.Translate(vsrc, vm.AccessLoad)
	if err != nil {
		k.ctr.faults.Inc()
		return dma.StatusFailure, err
	}
	// pdestination = virtual_to_physical(vdestination)
	k.cpu.Spin(k.cfg.TranslateCycles)
	pdst, err := as.Translate(vdst, vm.AccessStore)
	if err != nil {
		k.ctr.faults.Inc()
		return dma.StatusFailure, err
	}
	// check_size(): protection over the whole transfer range.
	k.cpu.Spin(k.cfg.CheckSizeCycles)
	if err := as.CheckRange(vsrc, size, vm.AccessLoad); err != nil {
		k.ctr.faults.Inc()
		return dma.StatusFailure, err
	}
	if err := as.CheckRange(vdst, size, vm.AccessStore); err != nil {
		k.ctr.faults.Inc()
		return dma.StatusFailure, err
	}

	// STORE psource TO DMA_SOURCE … LOAD status FROM DMA_STATUS.
	ctl := k.engine.Config().ControlBase
	if err := k.cpu.PhysStore(ctl+dma.RegSource, phys.Size64, uint64(psrc)); err != nil {
		return dma.StatusFailure, err
	}
	if err := k.cpu.PhysStore(ctl+dma.RegDest, phys.Size64, uint64(pdst)); err != nil {
		return dma.StatusFailure, err
	}
	if err := k.cpu.PhysStore(ctl+dma.RegSize, phys.Size64, size); err != nil {
		return dma.StatusFailure, err
	}
	return k.cpu.PhysLoad(ctl+dma.RegStatus, phys.Size64)
}

// sysDMAWait puts the caller to sleep until its outstanding transfer
// completes: the blocking alternative to status polling. The wakeup
// time is the transfer's completion plus interrupt delivery and
// rescheduling; while asleep, other processes get the CPU.
func (k *Kernel) sysDMAWait(p *proc.Process) (uint64, error) {
	var t *dma.Transfer
	if ctx, ok := k.procCtx[p.PID()]; ok {
		t = k.engine.ContextTransfer(ctx)
	}
	if t == nil {
		t = k.engine.LastTransfer()
	}
	if t == nil || t.Failed {
		return dma.StatusFailure, nil
	}
	now := k.cpu.Clock().Now()
	if t.Done(now) {
		return 0, nil
	}
	wake := t.End + k.cpu.Config().Freq.Cycles(InterruptWakeupCycles)
	p.BlockUntil(wake)
	return 0, nil
}

// sysWaitWrite registers a receive-interrupt watch on the page holding
// va and puts the caller to sleep until the fabric delivers into it.
func (k *Kernel) sysWaitWrite(p *proc.Process, va vm.VAddr) (uint64, error) {
	as := p.AddressSpace()
	base := as.PageBase(va)
	pte, ok := as.Lookup(base)
	if !ok {
		k.ctr.faults.Inc()
		return dma.StatusFailure, &vm.Fault{VA: va, Access: vm.AccessLoad, Kind: vm.FaultUnmapped, ASID: as.ASID()}
	}
	k.watches = append(k.watches, writeWatch{
		lo: pte.Frame,
		hi: pte.Frame + phys.Addr(k.PageSize()),
		p:  p,
	})
	p.BlockUntil(sim.Never)
	return 0, nil
}

// NotifyRemoteWrite is the NIC receive-interrupt path: the fabric calls
// it after delivering payload into [addr, addr+n). Every watcher of an
// overlapping range is woken (after interrupt + reschedule overhead)
// and its watch removed.
func (k *Kernel) NotifyRemoteWrite(addr phys.Addr, n int) {
	if len(k.watches) == 0 {
		return
	}
	now := k.cpu.Clock().Now()
	wake := now + k.cpu.Config().Freq.Cycles(InterruptWakeupCycles)
	end := addr + phys.Addr(n)
	kept := k.watches[:0]
	for _, w := range k.watches {
		if addr < w.hi && end > w.lo {
			w.p.Wake(wake)
			continue
		}
		kept = append(kept, w)
	}
	k.watches = kept
}

// sysAtomic performs an engine atomic operation from kernel mode — the
// costly baseline user-level atomics replace.
func (k *Kernel) sysAtomic(p *proc.Process, op int, va vm.VAddr, operand uint64) (uint64, error) {
	k.cpu.Spin(k.cfg.TranslateCycles)
	pa, err := p.AddressSpace().Translate(va, vm.AccessRMW)
	if err != nil {
		k.ctr.faults.Inc()
		return 0, err
	}
	target := k.engine.Config().AtomicShadow(pa, op)
	return k.cpu.PhysSwap(target, phys.Size64, operand)
}
