package kernel_test

import (
	"errors"
	"strings"
	"testing"

	"uldma/internal/dma"
	"uldma/internal/kernel"
	"uldma/internal/machine"
	"uldma/internal/phys"
	"uldma/internal/proc"
	"uldma/internal/sim"
	"uldma/internal/vm"
)

func newMachine(t *testing.T, mode dma.Mode) *machine.Machine {
	t.Helper()
	return machine.MustNew(machine.Alpha3000TC(mode, 5))
}

// idle spawns a process that exits immediately — a body for tests that
// only exercise kernel setup APIs.
func idle(ctx *proc.Context) error { return nil }

func TestShadowVAConventions(t *testing.T) {
	if kernel.ShadowVA(0x10000) != kernel.ShadowVABase+0x10000 {
		t.Fatal("ShadowVA wrong")
	}
	a := kernel.AtomicVA(0x10000, dma.AtomicCAS)
	if a != kernel.AtomicVABase+vm.VAddr(uint64(dma.AtomicCAS)<<32)+0x10000 {
		t.Fatalf("AtomicVA = %v", a)
	}
}

func TestAllocPageExhaustion(t *testing.T) {
	m := newMachine(t, dma.ModePaired)
	p := m.NewProcess("u", idle)
	as := p.AddressSpace()
	pages := (uint64(m.Cfg.MemSize) - uint64(m.Cfg.Kernel.UserFrameBase)) / m.Cfg.PageSize
	for i := uint64(0); i < pages; i++ {
		if _, err := m.Kernel.AllocPage(as, vm.VAddr(0x10000+i*m.Cfg.PageSize), vm.Read); err != nil {
			t.Fatalf("page %d: %v", i, err)
		}
	}
	if _, err := m.Kernel.AllocPage(as, 0x9000000, vm.Read); err == nil {
		t.Fatal("allocation beyond physical memory succeeded")
	}
	m.Run(proc.NewRoundRobin(1), 10)
}

func TestMapShadowInheritsProtection(t *testing.T) {
	m := newMachine(t, dma.ModePaired)
	p := m.NewProcess("u", idle)
	as := p.AddressSpace()
	frame, err := m.Kernel.AllocPage(as, 0x10000, vm.Read) // read-only page
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Kernel.MapShadow(p, 0x10000); err != nil {
		t.Fatal(err)
	}
	pte, ok := as.Lookup(kernel.ShadowVA(0x10000))
	if !ok {
		t.Fatal("shadow page not mapped")
	}
	if pte.Prot != vm.Read {
		t.Fatalf("shadow prot = %v, want read-only (inherited)", pte.Prot)
	}
	if pte.Frame != m.Engine.Config().Shadow(frame, 0) {
		t.Fatalf("shadow frame = %v", pte.Frame)
	}
	// Unmapped page cannot get a shadow.
	if err := m.Kernel.MapShadow(p, 0x90000); err == nil {
		t.Fatal("MapShadow of unmapped page succeeded")
	}
	m.Run(proc.NewRoundRobin(1), 10)
}

func TestMapShadowUsesAssignedContext(t *testing.T) {
	m := newMachine(t, dma.ModeExtended)
	p := m.NewProcess("u", idle)
	ctx, _, err := m.Kernel.AssignContext(p)
	if err != nil {
		t.Fatal(err)
	}
	frame, _ := m.Kernel.AllocPage(p.AddressSpace(), 0x10000, vm.Read|vm.Write)
	if err := m.Kernel.MapShadow(p, 0x10000); err != nil {
		t.Fatal(err)
	}
	pte, _ := p.AddressSpace().Lookup(kernel.ShadowVA(0x10000))
	want := m.Engine.Config().Shadow(frame, ctx)
	if pte.Frame != want {
		t.Fatalf("shadow frame = %v, want %v (ctx %d burned in)", pte.Frame, want, ctx)
	}
	m.Run(proc.NewRoundRobin(1), 10)
}

func TestMapAtomicNeedsReadWrite(t *testing.T) {
	m := newMachine(t, dma.ModePaired)
	p := m.NewProcess("u", idle)
	m.Kernel.AllocPage(p.AddressSpace(), 0x10000, vm.Read)
	if err := m.Kernel.MapAtomic(p, 0x10000); err == nil {
		t.Fatal("MapAtomic on read-only page succeeded")
	}
	m.Kernel.AllocPage(p.AddressSpace(), 0x20000, vm.Read|vm.Write)
	if err := m.Kernel.MapAtomic(p, 0x20000); err != nil {
		t.Fatal(err)
	}
	if err := m.Kernel.MapAtomic(p, 0x99990000); err == nil {
		t.Fatal("MapAtomic on unmapped page succeeded")
	}
	// Three aliases + 2 data pages mapped.
	if got := p.AddressSpace().MappedPages(); got != 5 {
		t.Fatalf("mapped pages = %d, want 5", got)
	}
	m.Run(proc.NewRoundRobin(1), 10)
}

func TestAssignContextKeyed(t *testing.T) {
	m := newMachine(t, dma.ModeKeyed)
	p := m.NewProcess("u", idle)
	ctx, key, err := m.Kernel.AssignContext(p)
	if err != nil {
		t.Fatal(err)
	}
	if key == 0 {
		t.Fatal("keyed mode must hand out a non-zero key")
	}
	// Context page mapped into the process.
	pte, ok := p.AddressSpace().Lookup(kernel.CtxPageVA)
	if !ok || pte.Frame != m.Engine.Config().CtxPage(ctx) {
		t.Fatalf("context page mapping: ok=%v frame=%v", ok, pte.Frame)
	}
	// Idempotent.
	ctx2, key2, err := m.Kernel.AssignContext(p)
	if err != nil || ctx2 != ctx || key2 != key {
		t.Fatalf("second AssignContext: ctx=%d key=%#x err=%v", ctx2, key2, err)
	}
	if got, ok := m.Kernel.ContextOf(p); !ok || got != ctx {
		t.Fatal("ContextOf wrong")
	}
	m.Run(proc.NewRoundRobin(1), 10)
}

func TestAssignContextExhaustion(t *testing.T) {
	m := newMachine(t, dma.ModeKeyed) // 8 contexts in the preset
	var procs []*proc.Process
	for i := 0; i < m.Engine.NumContexts(); i++ {
		p := m.NewProcess("u", idle)
		procs = append(procs, p)
		if _, _, err := m.Kernel.AssignContext(p); err != nil {
			t.Fatalf("context %d: %v", i, err)
		}
	}
	extra := m.NewProcess("overflow", idle)
	if _, _, err := m.Kernel.AssignContext(extra); err == nil {
		t.Fatal("ninth context assignment succeeded")
	}
	// Releasing one frees it for the overflow process (§3.2: "the rest
	// will have to go through the kernel" — until a context frees up).
	m.Kernel.ReleaseContext(procs[3])
	if _, _, err := m.Kernel.AssignContext(extra); err != nil {
		t.Fatalf("assignment after release: %v", err)
	}
	m.Kernel.ReleaseContext(extra)
	m.Kernel.ReleaseContext(extra) // double release: no-op
	m.Run(proc.NewRoundRobin(1), 100)
}

func TestContextAutoReleasedOnExit(t *testing.T) {
	// A process's register context is reclaimed at exit — ordinary
	// teardown, so a later process can claim it without operator help.
	m := newMachine(t, dma.ModeKeyed)
	var holders []*proc.Process
	for i := 0; i < m.Engine.NumContexts(); i++ {
		p := m.NewProcess("holder", idle)
		holders = append(holders, p)
		if _, _, err := m.Kernel.AssignContext(p); err != nil {
			t.Fatal(err)
		}
	}
	// Run all holders to completion: their contexts free up.
	if err := m.Run(proc.NewRoundRobin(1), 1000); err != nil {
		t.Fatal(err)
	}
	late := m.NewProcess("late", idle)
	ctx, key, err := m.Kernel.AssignContext(late)
	if err != nil {
		t.Fatalf("context not reclaimed at exit: %v", err)
	}
	if key == 0 || ctx < 0 {
		t.Fatalf("bad reassignment ctx=%d key=%#x", ctx, key)
	}
	// The old holder's key must no longer work at the engine.
	if _, ok := m.Kernel.ContextOf(holders[0]); ok {
		t.Fatal("exited process still owns a context")
	}
	m.Run(proc.NewRoundRobin(1), 100)
}

func TestDistinctKeysPerContext(t *testing.T) {
	m := newMachine(t, dma.ModeKeyed)
	seen := map[uint64]bool{}
	for i := 0; i < m.Engine.NumContexts(); i++ {
		p := m.NewProcess("u", idle)
		_, key, err := m.Kernel.AssignContext(p)
		if err != nil {
			t.Fatal(err)
		}
		if seen[key] {
			t.Fatal("duplicate key handed out")
		}
		seen[key] = true
	}
	m.Run(proc.NewRoundRobin(1), 100)
}

func TestMapOutOwnershipCheck(t *testing.T) {
	m := newMachine(t, dma.ModeMappedOut)
	p := m.NewProcess("u", idle)
	m.Kernel.AllocPage(p.AddressSpace(), 0x10000, vm.Read) // read-only: not enough
	if err := m.Kernel.MapOut(p, 0x10000, 0x80000); err == nil {
		t.Fatal("MapOut of read-only page succeeded")
	}
	m.Kernel.AllocPage(p.AddressSpace(), 0x20000, vm.Read|vm.Write)
	if err := m.Kernel.MapOut(p, 0x20000, 0x80000); err != nil {
		t.Fatal(err)
	}
	if err := m.Kernel.MapOut(p, 0xdead0000, 0x80000); err == nil {
		t.Fatal("MapOut of unmapped page succeeded")
	}
	m.Run(proc.NewRoundRobin(1), 10)
}

func TestMaterializeTable(t *testing.T) {
	// The kernel can encode a process's mappings — including shadow and
	// atomic aliases — as a hardware-walkable table, and the walk agrees
	// with the architectural map.
	m := newMachine(t, dma.ModeExtended)
	p := m.NewProcess("u", idle)
	if _, _, err := m.Kernel.AssignContext(p); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Kernel.AllocPage(p.AddressSpace(), 0x10000, vm.Read|vm.Write); err != nil {
		t.Fatal(err)
	}
	if err := m.Kernel.MapShadow(p, 0x10000); err != nil {
		t.Fatal(err)
	}
	if err := m.Kernel.MapAtomic(p, 0x10000); err != nil {
		t.Fatal(err)
	}
	tbl, err := m.Kernel.MaterializeTable(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, va := range []vm.VAddr{
		0x10000,
		kernel.ShadowVA(0x10000),
		kernel.AtomicVA(0x10000, dma.AtomicAdd),
	} {
		want, err := p.AddressSpace().Translate(va, vm.AccessLoad)
		if err != nil {
			t.Fatalf("%v: %v", va, err)
		}
		got, _, err := tbl.Walk(va, vm.AccessLoad)
		if err != nil {
			t.Fatalf("walk %v: %v", va, err)
		}
		if got != want {
			t.Fatalf("walk %v = %v, software says %v", va, got, want)
		}
	}
	m.Run(proc.NewRoundRobin(1), 10)
}

func TestPriorWorkHooksMarkKernelModified(t *testing.T) {
	m := newMachine(t, dma.ModePaired)
	if m.Kernel.KernelModified() {
		t.Fatal("fresh kernel reports modified")
	}
	m.Kernel.EnableSHRIMP2Hook()
	m.Kernel.EnableSHRIMP2Hook() // idempotent
	if !m.Kernel.KernelModified() {
		t.Fatal("SHRIMP-2 hook not reported as kernel modification")
	}
	m2 := newMachine(t, dma.ModePaired)
	m2.Kernel.EnableFLASHHook()
	m2.Kernel.EnableFLASHHook()
	if !m2.Kernel.KernelModified() {
		t.Fatal("FLASH hook not reported as kernel modification")
	}
}

func TestSysDMAMovesData(t *testing.T) {
	m := newMachine(t, dma.ModePaired)
	var status uint64
	p := m.NewProcess("u", func(ctx *proc.Context) error {
		for i := 0; i < 4; i++ {
			if err := ctx.Store(0x10000+vm.VAddr(8*i), phys.Size64, 0xfeed+uint64(i)); err != nil {
				return err
			}
		}
		st, err := ctx.Syscall(kernel.SysDMA, 0x10000, 0x20000, 32)
		status = st
		return err
	})
	m.Kernel.AllocPage(p.AddressSpace(), 0x10000, vm.Read|vm.Write)
	m.Kernel.AllocPage(p.AddressSpace(), 0x20000, vm.Read|vm.Write)
	if err := m.Run(proc.NewRoundRobin(4), 10_000); err != nil {
		t.Fatal(err)
	}
	if p.Err() != nil || status == dma.StatusFailure {
		t.Fatalf("err=%v status=%#x", p.Err(), status)
	}
	m.Settle()
	pa, _ := p.AddressSpace().Translate(0x20000, vm.AccessLoad)
	if v, _ := m.Mem.Read(pa, phys.Size64); v != 0xfeed {
		t.Fatalf("dst word = %#x", v)
	}
	if m.Kernel.Stats().DMASyscalls != 1 {
		t.Fatalf("stats = %+v", m.Kernel.Stats())
	}
}

func TestSysDMARejectsBadRights(t *testing.T) {
	cases := []struct {
		name    string
		srcProt vm.Prot
		dstProt vm.Prot
	}{
		{"unreadable source", vm.Write, vm.Read | vm.Write},
		{"unwritable destination", vm.Read | vm.Write, vm.Read},
	}
	for _, c := range cases {
		m := newMachine(t, dma.ModePaired)
		var gotErr error
		var status uint64
		p := m.NewProcess("u", func(ctx *proc.Context) error {
			status, gotErr = ctx.Syscall(kernel.SysDMA, 0x10000, 0x20000, 32)
			return nil
		})
		m.Kernel.AllocPage(p.AddressSpace(), 0x10000, c.srcProt)
		m.Kernel.AllocPage(p.AddressSpace(), 0x20000, c.dstProt)
		if err := m.Run(proc.NewRoundRobin(4), 10_000); err != nil {
			t.Fatal(err)
		}
		var fault *vm.Fault
		if !errors.As(gotErr, &fault) || status != dma.StatusFailure {
			t.Fatalf("%s: err=%v status=%#x", c.name, gotErr, status)
		}
		if m.Engine.Stats().Started != 0 {
			t.Fatalf("%s: engine started a transfer", c.name)
		}
	}
}

func TestSysDMARejectsRangeSpill(t *testing.T) {
	// First page writable, second page read-only: a transfer crossing
	// into it must be refused by check_size even though the first
	// address translates fine.
	m := newMachine(t, dma.ModePaired)
	var gotErr error
	p := m.NewProcess("u", func(ctx *proc.Context) error {
		_, gotErr = ctx.Syscall(kernel.SysDMA, 0x10000, 0x20000, uint64(m.Cfg.PageSize)+64)
		return nil
	})
	as := p.AddressSpace()
	m.Kernel.AllocPage(as, 0x10000, vm.Read|vm.Write)
	m.Kernel.AllocPage(as, 0x10000+vm.VAddr(m.Cfg.PageSize), vm.Read|vm.Write)
	m.Kernel.AllocPage(as, 0x20000, vm.Read|vm.Write)
	m.Kernel.AllocPage(as, 0x20000+vm.VAddr(m.Cfg.PageSize), vm.Read) // read-only spill target
	if err := m.Run(proc.NewRoundRobin(4), 10_000); err != nil {
		t.Fatal(err)
	}
	var fault *vm.Fault
	if !errors.As(gotErr, &fault) || fault.Kind != vm.FaultProtection {
		t.Fatalf("range spill: %v", gotErr)
	}
}

func TestSysAtomic(t *testing.T) {
	m := newMachine(t, dma.ModePaired)
	var got uint64
	p := m.NewProcess("u", func(ctx *proc.Context) error {
		if err := ctx.Store(0x10000, phys.Size64, 100); err != nil {
			return err
		}
		old, err := ctx.Syscall(kernel.SysAtomic, uint64(dma.AtomicAdd), 0x10000, 5)
		if err != nil {
			return err
		}
		got = old
		return nil
	})
	m.Kernel.AllocPage(p.AddressSpace(), 0x10000, vm.Read|vm.Write)
	if err := m.Run(proc.NewRoundRobin(4), 10_000); err != nil {
		t.Fatal(err)
	}
	if p.Err() != nil {
		t.Fatal(p.Err())
	}
	if got != 100 {
		t.Fatalf("fetch_and_add returned %d", got)
	}
	pa, _ := p.AddressSpace().Translate(0x10000, vm.AccessLoad)
	if v, _ := m.Mem.Read(pa, phys.Size64); v != 105 {
		t.Fatalf("cell = %d", v)
	}
}

func TestSyscallValidation(t *testing.T) {
	m := newMachine(t, dma.ModePaired)
	var errs []error
	m.NewProcess("u", func(ctx *proc.Context) error {
		_, e1 := ctx.Syscall(99)
		_, e2 := ctx.Syscall(kernel.SysDMA, 1)
		_, e3 := ctx.Syscall(kernel.SysAtomic)
		errs = append(errs, e1, e2, e3)
		return nil
	})
	if err := m.Run(proc.NewRoundRobin(4), 10_000); err != nil {
		t.Fatal(err)
	}
	for i, e := range errs {
		if e == nil {
			t.Fatalf("bad syscall %d accepted", i)
		}
	}
	if m.Kernel.Stats().Syscalls != 3 {
		t.Fatalf("syscall count = %d", m.Kernel.Stats().Syscalls)
	}
}

func TestMapRemoteValidation(t *testing.T) {
	m := newMachine(t, dma.ModeExtended)
	p := m.NewProcess("u", idle)
	if m.Kernel.Engine() != m.Engine {
		t.Fatal("Engine accessor wrong")
	}
	// Unaligned remote offset.
	if err := m.Kernel.MapRemote(p, 0x20000, 1, 0x80004); err == nil {
		t.Fatal("unaligned MapRemote accepted")
	}
	// Node/offset beyond the encodable remote window.
	if err := m.Kernel.MapRemote(p, 0x20000, 1<<20, 0); err == nil {
		t.Fatal("giant node id accepted")
	}
	// Valid mapping is write-only.
	if err := m.Kernel.MapRemote(p, 0x20000, 1, 0x80000); err != nil {
		t.Fatal(err)
	}
	pte, ok := p.AddressSpace().Lookup(0x20000)
	if !ok || pte.Prot != vm.Write {
		t.Fatalf("remote page prot = %v", pte.Prot)
	}
	// MapFrame shares an existing frame.
	if err := m.Kernel.MapFrame(p.AddressSpace(), 0x30000, 0x40000, vm.Read); err != nil {
		t.Fatal(err)
	}
	m.Run(proc.NewRoundRobin(1), 10)
}

func TestSysDMAWaitPaths(t *testing.T) {
	m := newMachine(t, dma.ModeExtended)
	var noTransfer, afterDone uint64
	p := m.NewProcess("u", func(ctx *proc.Context) error {
		// Nothing outstanding: failure status, no sleep.
		st, err := ctx.Syscall(kernel.SysDMAWait)
		if err != nil {
			return err
		}
		noTransfer = st
		// Initiate via ext-shadow, then block until completion.
		if err := ctx.Store(kernel.ShadowVA(0x20000), phys.Size64, 256); err != nil {
			return err
		}
		if _, err := ctx.Load(kernel.ShadowVA(0x10000), phys.Size64); err != nil {
			return err
		}
		if _, err := ctx.Syscall(kernel.SysDMAWait); err != nil {
			return err
		}
		// A second wait on the now-complete transfer returns without
		// sleeping.
		st, err = ctx.Syscall(kernel.SysDMAWait)
		afterDone = st
		return err
	})
	if _, _, err := m.Kernel.AssignContext(p); err != nil {
		t.Fatal(err)
	}
	for _, va := range []vm.VAddr{0x10000, 0x20000} {
		if _, err := m.Kernel.AllocPage(p.AddressSpace(), va, vm.Read|vm.Write); err != nil {
			t.Fatal(err)
		}
		if err := m.Kernel.MapShadow(p, va); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Run(proc.NewRoundRobin(8), 100_000); err != nil {
		t.Fatal(err)
	}
	if p.Err() != nil {
		t.Fatal(p.Err())
	}
	if noTransfer != dma.StatusFailure {
		t.Fatalf("wait with nothing outstanding = %#x", noTransfer)
	}
	if afterDone != 0 {
		t.Fatalf("wait on completed transfer = %#x", afterDone)
	}
	tr := m.Engine.LastTransfer()
	if tr == nil || !tr.Done(m.Clock.Now()) {
		t.Fatal("transfer not completed by the blocking wait")
	}
}

func TestSysWaitWriteValidation(t *testing.T) {
	m := newMachine(t, dma.ModePaired)
	var gotErr error
	m.NewProcess("u", func(ctx *proc.Context) error {
		_, gotErr = ctx.Syscall(kernel.SysWaitWrite, 0xdead0000) // unmapped
		return nil
	})
	if err := m.Run(proc.NewRoundRobin(4), 10_000); err != nil {
		t.Fatal(err)
	}
	var fault *vm.Fault
	if !errors.As(gotErr, &fault) || fault.Kind != vm.FaultUnmapped {
		t.Fatalf("SysWaitWrite on unmapped page: %v", gotErr)
	}
	// Bad arity.
	m2 := newMachine(t, dma.ModePaired)
	var arityErr error
	m2.NewProcess("u", func(ctx *proc.Context) error {
		_, arityErr = ctx.Syscall(kernel.SysWaitWrite)
		return nil
	})
	if err := m2.Run(proc.NewRoundRobin(4), 10_000); err != nil {
		t.Fatal(err)
	}
	if arityErr == nil {
		t.Fatal("SysWaitWrite with no args accepted")
	}
}

func TestNotifyRemoteWriteWakesOnlyOverlaps(t *testing.T) {
	m := newMachine(t, dma.ModePaired)
	sleeperA := m.NewProcess("a", func(ctx *proc.Context) error {
		_, err := ctx.Syscall(kernel.SysWaitWrite, 0x10000)
		return err
	})
	sleeperB := m.NewProcess("b", func(ctx *proc.Context) error {
		_, err := ctx.Syscall(kernel.SysWaitWrite, 0x10000)
		return err
	})
	frameA, err := m.Kernel.AllocPage(sleeperA.AddressSpace(), 0x10000, vm.Read)
	if err != nil {
		t.Fatal(err)
	}
	frameB, err := m.Kernel.AllocPage(sleeperB.AddressSpace(), 0x10000, vm.Read)
	if err != nil {
		t.Fatal(err)
	}
	// An arrival into frame B (scheduled as an event so the scheduler's
	// idle advance finds it) must wake only B; A would deadlock, so a
	// second event wakes A's page later.
	m.Events.Schedule(50*sim.Microsecond, func(sim.Time) {
		m.Kernel.NotifyRemoteWrite(frameB+128, 8)
	})
	m.Events.Schedule(200*sim.Microsecond, func(sim.Time) {
		m.Kernel.NotifyRemoteWrite(frameA, 8)
	})
	if err := m.Run(proc.NewRoundRobin(1), 10_000); err != nil {
		t.Fatal(err)
	}
	if sleeperA.Err() != nil || sleeperB.Err() != nil {
		t.Fatalf("a=%v b=%v", sleeperA.Err(), sleeperB.Err())
	}
	// B woke from the 50µs arrival; A needed the 200µs one.
	if sleeperB.CPUTime() >= sleeperA.CPUTime() && m.Clock.Now() < 200*sim.Microsecond {
		t.Fatal("wakeup attribution wrong")
	}
	if m.Clock.Now() < 200*sim.Microsecond {
		t.Fatalf("finished at %v; sleeper A must have waited for its own arrival", m.Clock.Now())
	}
}

func TestPALDMAEndToEnd(t *testing.T) {
	// §2.7: the PAL call executes the two-access sequence uninterrupted;
	// with shadow pages set up, a user process moves data in one call.
	m := newMachine(t, dma.ModePaired)
	m.Kernel.InstallPALDMA()
	var status uint64
	p := m.NewProcess("u", func(ctx *proc.Context) error {
		for i := 0; i < 4; i++ {
			if err := ctx.Store(0x10000+vm.VAddr(8*i), phys.Size64, 0xabc0+uint64(i)); err != nil {
				return err
			}
		}
		st, err := ctx.PALCall(kernel.PALUserDMA, 0x10000, 0x20000, 32)
		status = st
		return err
	})
	m.Kernel.AllocPage(p.AddressSpace(), 0x10000, vm.Read|vm.Write)
	m.Kernel.AllocPage(p.AddressSpace(), 0x20000, vm.Read|vm.Write)
	m.Kernel.MapShadow(p, 0x10000)
	m.Kernel.MapShadow(p, 0x20000)
	if err := m.Run(proc.NewRoundRobin(4), 10_000); err != nil {
		t.Fatal(err)
	}
	if p.Err() != nil || status == dma.StatusFailure {
		t.Fatalf("err=%v status=%#x", p.Err(), status)
	}
	m.Settle()
	pa, _ := p.AddressSpace().Translate(0x20000, vm.AccessLoad)
	if v, _ := m.Mem.Read(pa, phys.Size64); v != 0xabc0 {
		t.Fatalf("dst word = %#x", v)
	}
	// Bad arity surfaces an error, not a hang.
	m2 := newMachine(t, dma.ModePaired)
	m2.Kernel.InstallPALDMA()
	var palErr error
	m2.NewProcess("u", func(ctx *proc.Context) error {
		_, palErr = ctx.PALCall(kernel.PALUserDMA, 1)
		return nil
	})
	if err := m2.Run(proc.NewRoundRobin(1), 100); err != nil {
		t.Fatal(err)
	}
	if palErr == nil || !strings.Contains(palErr.Error(), "wants") {
		t.Fatalf("PAL arity error = %v", palErr)
	}
}
