package exp

// Shared trace-export support for the cmd/ tools. Importing this
// package gives every tool a -trace-out flag (the profile.go pattern):
// when set, the tool runs a small traced scenario on the obs spine and
// writes a Chrome/Perfetto trace_event JSON document there ("-" means
// stdout). The document loads directly in ui.perfetto.dev.
//
// The default scenario is one Table-1 initiation world per method —
// four process rows whose tracks show the syscall spans, uncached bus
// transactions, DMA bus-mastering windows and scheduler events each
// initiation style generates. Tools with a more specific story replace
// it via SetTraceScenario; faultsim's -replay writes a cluster-wide
// trace of one faultsearch seed instead (FaultReplay).
//
// Everything here is simulated-deterministic: the same invocation
// produces byte-identical documents at any -procs value (the scenario
// worlds are serial), which is what lets a trace be pinned as a golden
// file (TestTraceGolden).

import (
	"flag"
	"fmt"
	"io"
	"os"

	userdma "uldma/internal/core"
	"uldma/internal/obs"
	"uldma/internal/proc"
	"uldma/internal/vm"
)

var (
	traceOut = flag.String("trace-out", "", "write a Perfetto trace_event JSON document of a traced scenario to this file (\"-\" = stdout)")
	traceCap = flag.Int("trace-cap", 1<<16, "trace ring capacity (events) for -trace-out scenarios")

	traceScenario func() ([]obs.PerfettoProcess, error)
)

// TraceRequested reports whether -trace-out was given.
func TraceRequested() bool { return *traceOut != "" }

// SetTraceScenario replaces the default traced scenario for this tool.
func SetTraceScenario(fn func() ([]obs.PerfettoProcess, error)) { traceScenario = fn }

// FlushTrace runs the traced scenario and writes the Perfetto document
// to the -trace-out destination. It is a no-op when -trace-out was not
// given; the tools call it on their success paths.
func FlushTrace() error {
	if *traceOut == "" {
		return nil
	}
	fn := traceScenario
	if fn == nil {
		fn = DefaultTraceScenario
	}
	procs, err := fn()
	if err != nil {
		return fmt.Errorf("trace-out: %w", err)
	}
	return writeTraceDoc(procs)
}

func writeTraceDoc(procs []obs.PerfettoProcess) error {
	return writeTraceTo(*traceOut, procs)
}

// writeTraceTo renders procs as a Perfetto document at dest ("-" means
// stdout).
func writeTraceTo(dest string, procs []obs.PerfettoProcess) error {
	var w io.Writer = os.Stdout
	if dest != "-" {
		f, err := os.Create(dest)
		if err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		defer f.Close()
		w = f
	}
	if err := obs.WritePerfetto(w, procs); err != nil {
		return fmt.Errorf("trace-out: %w", err)
	}
	return nil
}

// DefaultTraceScenario traces one small initiation burst per Table-1
// method: each method's world becomes one Perfetto process row, so the
// four initiation styles can be compared track by track.
func DefaultTraceScenario() ([]obs.PerfettoProcess, error) {
	var out []obs.PerfettoProcess
	for i, method := range userdma.Methods() {
		p, err := tracedInitiations(method, i)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", method.Name(), err)
		}
		out = append(out, p)
	}
	return out, nil
}

// tracedInitiations builds method's calibrated world with the trace
// spine enabled, runs four 64-byte DMAs, and returns the world's event
// stream as one Perfetto process.
func tracedInitiations(method userdma.Method, pid int) (obs.PerfettoProcess, error) {
	m := userdma.Machine(method)
	tr := m.EnableTrace(*traceCap, obs.Ring)
	var h *userdma.Handle
	const src, dst = vm.VAddr(0x10000), vm.VAddr(0x20000)
	p := m.NewProcess("init", func(c *proc.Context) error {
		for i := 0; i < 4; i++ {
			if _, err := h.DMA(c, src, dst, 64); err != nil {
				return err
			}
		}
		return nil
	})
	var err error
	if h, err = method.Attach(m, p); err != nil {
		return obs.PerfettoProcess{}, err
	}
	if _, err := m.SetupPages(p, src, 1, vm.Read|vm.Write); err != nil {
		return obs.PerfettoProcess{}, err
	}
	if _, err := m.SetupPages(p, dst, 1, vm.Read|vm.Write); err != nil {
		return obs.PerfettoProcess{}, err
	}
	if err := m.Run(proc.NewRoundRobin(1<<20), 1<<30); err != nil {
		return obs.PerfettoProcess{}, err
	}
	if p.Err() != nil {
		return obs.PerfettoProcess{}, p.Err()
	}
	m.Settle()
	return obs.PerfettoProcess{PID: pid, Name: method.Name(), Events: tr.Events()}, nil
}

// FaultReplay rebuilds the faultsearch world for one seed — the same
// loopback cluster, fault plan and reliable channel the bounded search
// model-checks — with cluster-wide tracing enabled, runs it to
// completion under the search's finish policy, and writes the Perfetto
// document to the -trace-out destination (stdout when unset). The
// returned verdict re-states the search's delivery check for this
// straight-line run.
func FaultReplay(seed uint64, total int) (verdict string, err error) {
	cluster, world, err := faultSearchWorld(seed, total)
	if err != nil {
		return "", err
	}
	tr := cluster.EnableTrace(*traceCap, obs.Ring)
	if err := cluster.RunRoundRobin(8, 1<<62); err != nil {
		return "", err
	}
	cluster.Settle()
	verdict = "exactly-once, in order"
	if err := world.Check(); err != nil {
		verdict = "VIOLATION: " + err.Error()
	}
	procs := []obs.PerfettoProcess{{
		PID:    int(seed),
		Name:   fmt.Sprintf("faultsearch seed=%d plan=%+v", seed, FaultPlanForSeed(seed).Default),
		Events: tr.Events(),
	}}
	if *traceOut == "" {
		return verdict, obs.WritePerfetto(os.Stdout, procs)
	}
	return verdict, writeTraceDoc(procs)
}
