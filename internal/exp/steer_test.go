package exp

// The steered loop's two load-bearing claims, pinned:
//
//   1. Same answer, strictly fewer cells — the bisected break-even
//      frontier is byte-identical to the exhaustive grid's crossovers
//      while probing strictly fewer cells; the dominated-abort walk
//      leaves the grid's best policy standing without running the
//      aborted cells.
//   2. Worker-count invariance — the full steered suite (probes,
//      rounds, decisions, renderings) is byte-identical at -procs
//      {1, 4, 8}, because policies only ever see batch-ordered merged
//      history.

import (
	"strings"
	"testing"

	userdma "uldma/internal/core"
	"uldma/internal/obs"
)

// TestSteerBreakEvenMatchesExhaustive pins the headline equivalence:
// per method, the steered bisect lands on the exhaustive grid's exact
// crossover size, in strictly fewer probes than the grid has cells.
func TestSteerBreakEvenMatchesExhaustive(t *testing.T) {
	groups, err := BreakEven(2)
	if err != nil {
		t.Fatal(err)
	}
	res, lanes, err := SteeredBreakEven(Params{Procs: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(lanes) != len(groups) {
		t.Fatalf("steered search has %d lanes, exhaustive grid %d methods", len(lanes), len(groups))
	}
	for i, g := range groups {
		want, wantFound := userdma.Crossover(g.Points)
		lane := lanes[i]
		if lane.Method != g.Method.Name() {
			t.Fatalf("lane %d is %s, exhaustive row is %s", i, lane.Method, g.Method.Name())
		}
		if lane.Found != wantFound || lane.Crossover != want {
			t.Errorf("%s: steered crossover (%d, %v), exhaustive (%d, %v)",
				lane.Method, lane.Crossover, lane.Found, want, wantFound)
		}
		if lane.Probes >= len(g.Points) {
			t.Errorf("%s: bisect probed %d cells, grid row has %d — not strictly fewer",
				lane.Method, lane.Probes, len(g.Points))
		}
	}
	if res.Probed() >= res.GridCells {
		t.Fatalf("steered search probed %d of a %d-cell grid — not strictly fewer", res.Probed(), res.GridCells)
	}
}

// TestSteerWorkerParity renders the full steered suite at three worker
// counts and demands byte-identical output: policies see only merged
// batch-ordered history, so the search is invariant to how batches
// fan out.
func TestSteerWorkerParity(t *testing.T) {
	var ref string
	for _, procs := range []int{1, 4, 8} {
		s, err := RunSteerSuite(Params{Procs: procs}, nil)
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		text := SteerSuiteText(s)
		if ref == "" {
			ref = text
			continue
		}
		if text != ref {
			t.Fatalf("steered suite diverges at procs=%d:\n--- procs=1 ---\n%s\n--- procs=%d ---\n%s",
				procs, ref, procs, text)
		}
	}
}

// TestSteerPagingDominated pins the dominated-abort walk: at least one
// recovery policy is aborted mid-grid (its remaining cells never run),
// the pre-pin policy survives, and every probe carried the live feed.
func TestSteerPagingDominated(t *testing.T) {
	res, survivors, err := SteeredPaging(Params{Procs: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Probed() >= res.GridCells {
		t.Fatalf("dominated walk probed %d of a %d-cell grid — nothing aborted", res.Probed(), res.GridCells)
	}
	if aborts := res.Log.count(ActAbort); aborts == 0 {
		t.Fatal("no abort decisions recorded despite probing fewer cells than the grid")
	}
	found := false
	for _, s := range survivors {
		if s == "pin" {
			found = true
		}
	}
	if !found {
		t.Fatalf("kernel-assisted pin was aborted (survivors %v); the exhaustive grid shows it undominated", survivors)
	}
	for _, probe := range res.Probes {
		pr := probe.Obs.Paging[0]
		if pr.LiveSamples != pr.Transfers {
			t.Fatalf("%s/%dp: live feed took %d samples over %d transfers",
				pr.Policy, pr.Pages, pr.LiveSamples, pr.Transfers)
		}
	}
}

// TestSteerZoomDeterministic pins the zoom search: it splits (not just
// probes the coarse axis), brackets a non-degenerate knee inside the
// drop range, and replays byte-identically.
func TestSteerZoomDeterministic(t *testing.T) {
	run := func() (*SteerResult, *ZoomPolicy) {
		res, pol, err := SteeredFaultZoom(Params{Procs: 2}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res, pol
	}
	res, pol := run()
	if splits := res.Log.count(ActSplit); splits != steerZoomSplits {
		t.Fatalf("zoom performed %d splits, want %d", splits, steerZoomSplits)
	}
	lo, hi := pol.Knee()
	drops := FaultDrops()
	if !(lo >= drops[0] && hi <= drops[len(drops)-1] && lo < hi) {
		t.Fatalf("knee [%v, %v] outside drop axis [%v, %v]", lo, hi, drops[0], drops[len(drops)-1])
	}
	if res.GridCells <= res.Probed() {
		t.Fatalf("zoom probed %d cells but its resolution only equals a %d-cell uniform grid",
			res.Probed(), res.GridCells)
	}
	res2, pol2 := run()
	lo2, hi2 := pol2.Knee()
	if lo != lo2 || hi != hi2 || res.Log.Render() != res2.Log.Render() {
		t.Fatalf("zoom replay diverged: knee [%v,%v] vs [%v,%v]\n%s\nvs\n%s",
			lo, hi, lo2, hi2, res.Log.Render(), res2.Log.Render())
	}
}

// TestSteerOSLatConverges pins the ladder: the null-syscall mean
// converges before the ladder tops out, so the steered run pays fewer
// iterations than the exhaustive worst case.
func TestSteerOSLatConverges(t *testing.T) {
	res, pol, err := SteeredOSLat(Params{Procs: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	iters, mean := pol.Converged()
	if iters == 0 || mean == 0 {
		t.Fatalf("ladder did not converge: iters=%d mean=%v", iters, mean)
	}
	ladder := ConvergeLadder()
	if res.Probed() >= len(ladder) {
		t.Fatalf("ladder probed all %d rungs — no early convergence", len(ladder))
	}
	if iters != ladder[res.Probed()-1] {
		t.Fatalf("accepted iters=%d is not the last probed rung (%d)", iters, ladder[res.Probed()-1])
	}
}

// TestSteerDecisionTrace pins the trace mirroring: every decision of a
// steered run lands on the obs spine as a CatSteer instant, readable
// through a streaming Reader while the searches run.
func TestSteerDecisionTrace(t *testing.T) {
	tr := obs.NewTrace(4096, obs.Ring)
	rd := tr.NewReader()
	res, _, err := SteeredBreakEven(Params{Procs: 2}, tr)
	if err != nil {
		t.Fatal(err)
	}
	events, skipped := rd.Poll(nil)
	if skipped != 0 {
		t.Fatalf("reader skipped %d events under a 4096 cap", skipped)
	}
	decisions := res.Log.Decisions()
	if len(events) != len(decisions) {
		t.Fatalf("trace carries %d steer events, log has %d decisions", len(events), len(decisions))
	}
	for i, ev := range events {
		if ev.Cat != obs.CatSteer {
			t.Fatalf("event %d is cat=%s, want steer", i, ev.Cat)
		}
		d := decisions[i]
		if want := string(d.Act) + " " + d.Cell; ev.Name != want {
			t.Fatalf("event %d named %q, decision was %q", i, ev.Name, want)
		}
		if ev.A0 != uint64(d.Round) {
			t.Fatalf("event %d carries round %d, decision was round %d", i, ev.A0, d.Round)
		}
	}
	if !strings.Contains(res.Log.Render(), "probe") {
		t.Fatal("decision log renders without a single probe line")
	}
}
