package exp

import (
	"strings"
	"testing"

	"uldma/internal/sim"
)

// normalize strips the one configuration field that legitimately
// differs across layouts (the shard count) so ScalePoints from
// different partitions of the same world can be compared whole.
func normalizeScale(pt ScalePoint) ScalePoint {
	pt.Shards = 0
	return pt
}

// TestScaleShardParity pins the sharded engine's contract end to end
// through the experiment layer: the default small world produces an
// IDENTICAL observation — every latency percentile, every counter, the
// state fingerprint — at shards × workers {1,4,8}.
func TestScaleShardParity(t *testing.T) {
	p := Params{Nodes: 32, Arrival: 20000, ScaleDur: sim.Millisecond}
	var ref ScalePoint
	have := false
	for _, shards := range []int{1, 4, 8} {
		for _, workers := range []int{1, 4, 8} {
			p.Shards = shards
			pt, err := RunScale(p, workers)
			if err != nil {
				t.Fatalf("shards=%d workers=%d: %v", shards, workers, err)
			}
			if pt.Shards != shards {
				t.Fatalf("ScalePoint.Shards = %d, want %d", pt.Shards, shards)
			}
			got := normalizeScale(pt)
			if !have {
				ref, have = got, true
				if ref.Completed == 0 || ref.Deliveries == 0 {
					t.Fatalf("degenerate reference run: %+v", ref)
				}
				continue
			}
			if got != ref {
				t.Errorf("shards=%d workers=%d diverges:\n got %+v\nwant %+v", shards, workers, got, ref)
			}
		}
	}
}

// TestScaleThousandNode is the acceptance pin: a 1000-node world with
// over 10^6 link deliveries completes byte-identically across the
// shard × worker grid. Under the race detector the grid shrinks to its
// diagonal (the full grid is already pinned above and by
// TestShardEquivalence; race multiplies the per-event cost ~10×).
func TestScaleThousandNode(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-node world in -short mode")
	}
	p := Params{Nodes: 1000, Arrival: 55000, ScaleDur: 10 * sim.Millisecond}
	grid := [][2]int{{1, 1}, {4, 1}, {4, 4}, {8, 8}, {1, 4}, {8, 1}}
	if raceEnabled {
		grid = [][2]int{{1, 1}, {4, 4}, {8, 8}}
	}
	var ref ScalePoint
	have := false
	for _, sw := range grid {
		p.Shards = sw[0]
		pt, err := RunScale(p, sw[1])
		if err != nil {
			t.Fatalf("shards=%d workers=%d: %v", sw[0], sw[1], err)
		}
		got := normalizeScale(pt)
		if !have {
			ref, have = got, true
			if ref.Deliveries < 1_000_000 {
				t.Fatalf("only %d link deliveries — the acceptance pin needs >= 10^6", ref.Deliveries)
			}
			if ref.Nodes != 1000 {
				t.Fatalf("Nodes = %d, want 1000", ref.Nodes)
			}
			continue
		}
		if got != ref {
			t.Errorf("shards=%d workers=%d diverges at 1000 nodes:\n got %+v\nwant %+v", sw[0], sw[1], got, ref)
		}
	}
}

func TestScaleValidation(t *testing.T) {
	cases := []struct {
		name string
		p    Params
	}{
		{"one node", Params{Nodes: 1}},
		{"negative nodes", Params{Nodes: -3}},
		{"shards above nodes", Params{Nodes: 4, Shards: 5}},
		{"negative shards", Params{Shards: -1}},
		{"negative arrival", Params{Arrival: -10}},
		{"negative tenants", Params{Tenants: -1}},
		{"negative duration", Params{ScaleDur: -sim.Millisecond}},
	}
	for _, tc := range cases {
		if _, err := RunScale(tc.p, 1); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
		// The cell expansion path must reject the same configs, so the
		// tools fail before spinning up a runner.
		if _, err := scaleCells(tc.p); err == nil {
			t.Errorf("%s: scaleCells accepted", tc.name)
		}
	}
}

// The registered experiment renders through the shared runner like
// every other spec.
func TestScaleExperimentRenders(t *testing.T) {
	p := Params{Nodes: 8, Shards: 2, Arrival: 10000, ScaleDur: 200 * sim.Microsecond}
	out, err := Report("scale", Text, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"NOW at scale", "goodput", "fingerprint", "sync windows"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	rows := func() []ScaleRow {
		r, err := RunNamed("scale", p)
		if err != nil {
			t.Fatal(err)
		}
		return ScaleRows(r)
	}()
	if len(rows) != 1 || rows[0].Label != "8n/2s" || rows[0].Deliveries == 0 {
		t.Fatalf("ScaleRows = %+v, want one populated 8n/2s row", rows)
	}
	if rows[0].HostNs != 0 {
		t.Fatalf("HostNs = %d before any -bench fill, want omitted zero", rows[0].HostNs)
	}
}
