package exp

// The batched-initiation experiments over the descriptor-ring path
// (internal/dma ring engine + internal/core RingHandle client):
//
//   - ringdepth: amortized initiation cost and goodput versus ring
//     depth, per user-level protocol, against that protocol's own
//     unbatched per-transfer baseline (depth 0).
//   - ringchurn: 4 register contexts oversubscribed by dozens of
//     ring-using processes under the kernel's three arbitration
//     policies (FIFO wait, LRU key-stealing, cooperative yield).

import (
	"fmt"
	"strings"

	userdma "uldma/internal/core"
	"uldma/internal/kernel"
	"uldma/internal/stats"
)

func init() {
	Register(&Experiment{
		Name:  "ringdepth",
		Doc:   "batched initiation: per-transfer cost and goodput vs descriptor-ring depth",
		Cells: ringDepthCells,
		Render: map[Format]RenderFunc{
			Text:     ringDepthText,
			Markdown: ringDepthMarkdown,
		},
	})
	Register(&Experiment{
		Name:  "ringchurn",
		Doc:   "register-context oversubscription: ring processes vs contexts under fifo/steal/yield",
		Cells: ringChurnCells,
		Render: map[Format]RenderFunc{
			Text:     ringChurnText,
			Markdown: ringChurnMarkdown,
		},
	})
}

// RingProtocols is the ringdepth method axis: the user-level protocols
// (kernel-level DMA has no user-mapped doorbell page to batch through).
func RingProtocols() []userdma.Method {
	return []userdma.Method{
		userdma.ExtShadow{},
		userdma.RepeatedPassing{Len: 5, Barriers: true},
		userdma.KeyBased{},
	}
}

// RingDepths is the ringdepth depth axis; 0 is the unbatched baseline
// (the protocol's own initiation sequence, no ring).
func RingDepths() []uint64 { return []uint64{0, 1, 2, 4, 8, 16, 32, 64} }

func ringDepthCells(p Params) ([]Cell, error) {
	var cells []Cell
	for _, method := range RingProtocols() {
		for _, depth := range RingDepths() {
			method, depth := method, depth
			cells = append(cells, Cell{
				Method: method.Name(),
				Size:   depth,
				Config: fmt.Sprintf("depth %d", depth),
				Run: func() (Obs, bool, error) {
					if depth == 0 {
						r, err := userdma.MeasureMethod(method, userdma.ConfigFor(method), p.Iters)
						if err != nil {
							return Obs{}, false, fmt.Errorf("%s baseline: %w", method.Name(), err)
						}
						base := userdma.RingDepthResult{
							Method:  method.Name(),
							Depth:   0,
							Batches: r.Iterations,
							Posted:  uint64(r.Iterations),
							PerInit: r.Mean,
						}
						return Obs{Ring: []userdma.RingDepthResult{base}}, false, nil
					}
					r, err := userdma.MeasureRingDepth(method, p.Iters, depth)
					if err != nil {
						return Obs{}, false, fmt.Errorf("%s depth %d: %w", method.Name(), depth, err)
					}
					return Obs{Ring: []userdma.RingDepthResult{r}}, false, nil
				},
			})
		}
	}
	return cells, nil
}

// RingDepth runs the "ringdepth" experiment on p.Procs workers.
func RingDepth(iters, procs int) ([]userdma.RingDepthResult, error) {
	r, err := RunNamed("ringdepth", Params{Iters: iters, Procs: procs})
	if err != nil {
		return nil, err
	}
	return r.RingPoints(), nil
}

// ringBaselines maps method name to its depth-0 per-transfer cost.
func ringBaselines(points []userdma.RingDepthResult) map[string]userdma.RingDepthResult {
	base := make(map[string]userdma.RingDepthResult)
	for _, pt := range points {
		if pt.Depth == 0 {
			base[pt.Method] = pt
		}
	}
	return base
}

func ringDepthText(r *Result, p Params) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Batched initiation — descriptor-ring depth sweep (%d initiations/point)\n", p.Iters)
	fmt.Fprintf(&b, "machine: %s\n", MachineName())
	b.WriteString("depth 0 = the protocol's own unbatched initiation sequence\n\n")
	points := r.RingPoints()
	base := ringBaselines(points)
	tb := stats.NewTable("protocol", "depth", "per-init (µs)", "vs unbatched", "goodput (MB/s)", "doorbells", "completions")
	for _, pt := range points {
		speedup := "1.00x"
		if bl, ok := base[pt.Method]; ok && pt.PerInit > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(bl.PerInit)/float64(pt.PerInit))
		}
		goodput := "-"
		if pt.GoodputMBps > 0 {
			goodput = fmt.Sprintf("%.1f", pt.GoodputMBps)
		}
		tb.AddRow(pt.Method, pt.Depth,
			fmt.Sprintf("%.3f", pt.PerInit.Microseconds()),
			speedup, goodput, pt.Doorbells, pt.Completions)
	}
	b.WriteString(tb.String())
	b.WriteByte('\n')
	return b.String()
}

func ringDepthMarkdown(r *Result, _ Params) string {
	var b strings.Builder
	b.WriteString("\n## Ring — batched initiation vs descriptor-ring depth\n")
	b.WriteString("\n| protocol | depth | per-init (µs) | vs unbatched | goodput (MB/s) |\n")
	b.WriteString("|---|---|---|---|---|\n")
	points := r.RingPoints()
	base := ringBaselines(points)
	for _, pt := range points {
		speedup := 1.0
		if bl, ok := base[pt.Method]; ok && pt.PerInit > 0 {
			speedup = float64(bl.PerInit) / float64(pt.PerInit)
		}
		goodput := "-"
		if pt.GoodputMBps > 0 {
			goodput = fmt.Sprintf("%.1f", pt.GoodputMBps)
		}
		fmt.Fprintf(&b, "| %s | %d | %.3f | %.2fx | %s |\n",
			pt.Method, pt.Depth, pt.PerInit.Microseconds(), speedup, goodput)
	}
	return b.String()
}

// RingPolicies is the ringchurn policy axis.
func RingPolicies() []kernel.CtxPolicy {
	return []kernel.CtxPolicy{kernel.CtxFIFO, kernel.CtxSteal, kernel.CtxYield}
}

// RingChurnProcs is the ringchurn oversubscription axis (the engine has
// ringChurnContexts register contexts).
func RingChurnProcs() []int { return []int{24, 96, 192} }

const (
	ringChurnContexts = 4
	ringChurnBatches  = 3
)

func ringChurnCells(Params) ([]Cell, error) {
	var cells []Cell
	for _, policy := range RingPolicies() {
		for _, procs := range RingChurnProcs() {
			policy, procs := policy, procs
			cells = append(cells, Cell{
				Method: policy.String(),
				Size:   uint64(procs),
				Config: fmt.Sprintf("%d procs", procs),
				Run: func() (Obs, bool, error) {
					r, err := userdma.RingChurnBench(policy, procs, ringChurnContexts, ringChurnBatches)
					if err != nil {
						return Obs{}, false, fmt.Errorf("%v/%d procs: %w", policy, procs, err)
					}
					return Obs{Churn: []userdma.RingChurnResult{r}}, false, nil
				},
			})
		}
	}
	return cells, nil
}

// RingChurn runs the "ringchurn" experiment on procs workers.
func RingChurn(procs int) ([]userdma.RingChurnResult, error) {
	r, err := RunNamed("ringchurn", Params{Procs: procs})
	if err != nil {
		return nil, err
	}
	return r.ChurnPoints(), nil
}

func ringChurnText(r *Result, _ Params) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Register-context churn — %d contexts oversubscribed, depth-8 rings, %d batches/process\n",
		ringChurnContexts, ringChurnBatches)
	fmt.Fprintf(&b, "machine: %s\n\n", MachineName())
	tb := stats.NewTable("policy", "procs", "acquire (µs)", "doorbells", "posted", "dropped", "steals", "waits", "elapsed")
	for _, pt := range r.ChurnPoints() {
		tb.AddRow(pt.Policy, pt.Procs,
			fmt.Sprintf("%.2f", pt.MeanAcquire.Microseconds()),
			pt.Doorbells, pt.Posted, pt.Dropped, pt.Steals, pt.Waits, pt.Elapsed)
	}
	b.WriteString(tb.String())
	b.WriteByte('\n')
	return b.String()
}

func ringChurnMarkdown(r *Result, _ Params) string {
	var b strings.Builder
	fmt.Fprintf(&b, "\n## Ring churn — %d contexts oversubscribed\n", ringChurnContexts)
	b.WriteString("\n| policy | procs | acquire (µs) | doorbells | dropped | steals | waits |\n")
	b.WriteString("|---|---|---|---|---|---|---|\n")
	for _, pt := range r.ChurnPoints() {
		fmt.Fprintf(&b, "| %s | %d | %.2f | %d | %d | %d | %d |\n",
			pt.Policy, pt.Procs, pt.MeanAcquire.Microseconds(),
			pt.Doorbells, pt.Dropped, pt.Steals, pt.Waits)
	}
	return b.String()
}
