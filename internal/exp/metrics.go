package exp

// MetricsSnapshot: the observability registry as a benchmark section.
// One calibrated Table-1 world per method runs a fixed initiation
// burst, then every registered metric (cpu.*, tlb.*, bus.*, wb.*,
// phys.*, dma.*, proc.*, kernel.*) is snapshotted. The values are
// exact event counts of a deterministic world, so cmd/benchdiff can
// diff them like the timing leaves: any delta is a behavioural change,
// and a metric present on only one side reads as added/removed.

import (
	"fmt"

	userdma "uldma/internal/core"
	"uldma/internal/obs"
	"uldma/internal/proc"
	"uldma/internal/vm"
)

// MetricsSnapshot runs iters 64-byte DMA initiations in each Table-1
// method's world and returns every registered metric per method. The
// worlds are serial (they are cheap; the section exists for diffing,
// not for wall-clock numbers), so the document is byte-identical for
// any -procs value.
func MetricsSnapshot(iters int) (map[string][]obs.MetricValue, error) {
	out := make(map[string][]obs.MetricValue, len(userdma.Methods()))
	for _, method := range userdma.Methods() {
		mv, err := methodMetrics(method, iters)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", method.Name(), err)
		}
		out[method.Name()] = mv
	}
	return out, nil
}

func methodMetrics(method userdma.Method, iters int) ([]obs.MetricValue, error) {
	m := userdma.Machine(method)
	var h *userdma.Handle
	const src, dst = vm.VAddr(0x10000), vm.VAddr(0x20000)
	p := m.NewProcess("metrics", func(c *proc.Context) error {
		for i := 0; i < iters; i++ {
			if _, err := h.DMA(c, src, dst, 64); err != nil {
				return err
			}
		}
		return nil
	})
	var err error
	if h, err = method.Attach(m, p); err != nil {
		return nil, err
	}
	if _, err := m.SetupPages(p, src, 1, vm.Read|vm.Write); err != nil {
		return nil, err
	}
	if _, err := m.SetupPages(p, dst, 1, vm.Read|vm.Write); err != nil {
		return nil, err
	}
	if err := m.Run(proc.NewRoundRobin(1<<20), 1<<30); err != nil {
		return nil, err
	}
	if p.Err() != nil {
		return nil, p.Err()
	}
	m.Settle()
	return m.Obs.Snapshot(), nil
}
