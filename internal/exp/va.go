package exp

// The virtual-address DMA experiments (internal/iommu + the engine's
// VA plane + the kernel pager):
//
//   - vasweep: Table 1's four initiation methods measured through the
//     physical shadow window AND through the IOMMU's VA window (the
//     ordering must survive translation), plus the IOTLB hit-rate
//     sweep — full-page streams over a growing device-page working set
//     against a fixed-size IOTLB.
//   - paging: the kernel pager's residency budget oversubscribed by a
//     growing working set, under each of the three mid-transfer fault
//     recovery policies (stall-and-resolve, bounce-buffer, kernel-
//     assisted pin), scored by goodput and tail latency.

import (
	"fmt"
	"strings"

	userdma "uldma/internal/core"
	"uldma/internal/dma"
	"uldma/internal/stats"
)

func init() {
	Register(&Experiment{
		Name:  "vasweep",
		Doc:   "virtual-address DMA: Table 1 through the IOMMU + IOTLB hit-rate sweep",
		Cells: vaSweepCells,
		Render: map[Format]RenderFunc{
			Text:     vaSweepText,
			Markdown: vaSweepMarkdown,
		},
	})
	Register(&Experiment{
		Name:  "paging",
		Doc:   "device paging: goodput/latency vs oversubscription under stall/bounce/pin recovery",
		Cells: pagingCells,
		Render: map[Format]RenderFunc{
			Text:     pagingText,
			Markdown: pagingMarkdown,
		},
	})
}

// VASweepEntries is the default IOTLB size the hit-rate sweep runs
// against — small enough that the canonical working sets straddle the
// knee. Params.TLB (dmabench -tlb) overrides it.
const VASweepEntries = 8

func vaEntries(p Params) int {
	if p.TLB > 0 {
		return p.TLB
	}
	return VASweepEntries
}

// VASweepPages is the device-page working-set axis of the hit-rate
// sweep: inside the IOTLB, at it, and past it.
func VASweepPages() []int { return []int{2, 4, 8, 16, 32} }

// vaSweepTransfers is the full-page streams per hit-rate cell. Fixed
// (not p.Iters): each transfer is a full 8 KiB walk with completion
// wait, two decimal orders costlier than a zero-length initiation.
const vaSweepTransfers = 128

func vaSweepCells(p Params) ([]Cell, error) {
	var cells []Cell
	// Axis 1: the Table 1 grid, shadow- and VA-initiated per method.
	for _, method := range userdma.Methods() {
		method := method
		cells = append(cells, Cell{
			Method: method.Name(),
			Config: "table1",
			Run: func() (Obs, bool, error) {
				sh, err := userdma.MeasureMethod(method, userdma.ConfigFor(method), p.Iters)
				if err != nil {
					return Obs{}, false, fmt.Errorf("%s shadow: %w", method.Name(), err)
				}
				va, err := userdma.MeasureVAMethod(method, userdma.VAConfigFor(method, 0), p.Iters)
				if err != nil {
					return Obs{}, false, fmt.Errorf("%s va: %w", method.Name(), err)
				}
				row := userdma.VACompareRow{
					Method:     method.Name(),
					Iterations: p.Iters,
					ShadowMean: sh.Mean,
					VAMean:     va.Mean,
					PaperMean:  sh.PaperMean,
				}
				return Obs{VACmp: []userdma.VACompareRow{row}}, false, nil
			},
		})
	}
	// Axis 2: the IOTLB hit-rate sweep.
	entries := vaEntries(p)
	for _, pages := range VASweepPages() {
		pages := pages
		cells = append(cells, Cell{
			Method: "Ext. Shadow Addressing",
			Config: fmt.Sprintf("%d-entry iotlb", entries),
			Size:   uint64(pages),
			Run: func() (Obs, bool, error) {
				pt, err := userdma.MeasureIOTLB(pages, entries, vaSweepTransfers)
				if err != nil {
					return Obs{}, false, fmt.Errorf("iotlb %d pages: %w", pages, err)
				}
				return Obs{IOTLB: []userdma.IOTLBPoint{pt}}, false, nil
			},
		})
	}
	return cells, nil
}

// VASweep runs the "vasweep" experiment on procs workers.
func VASweep(iters, procs int) ([]userdma.VACompareRow, []userdma.IOTLBPoint, error) {
	r, err := RunNamed("vasweep", Params{Iters: iters, Procs: procs})
	if err != nil {
		return nil, nil, err
	}
	return r.VAComparisons(), r.IOTLBPoints(), nil
}

func vaSweepText(r *Result, p Params) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Virtual-address DMA — Table 1 through the IOMMU (%d initiations/row)\n", p.Iters)
	fmt.Fprintf(&b, "machine: %s + IOMMU (per-context device page tables, ASID-tagged IOTLB)\n\n", MachineName())
	tb := stats.NewTable("method", "shadow (µs)", "va (µs)", "paper (µs)")
	for _, row := range r.VAComparisons() {
		paper := "-"
		if row.PaperMean > 0 {
			paper = fmt.Sprintf("%.1f", row.PaperMean.Microseconds())
		}
		tb.AddRow(row.Method,
			fmt.Sprintf("%.3f", row.ShadowMean.Microseconds()),
			fmt.Sprintf("%.3f", row.VAMean.Microseconds()),
			paper)
	}
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "\nIOTLB hit rate — %d-entry IOTLB, cyclic full-page streams (%d transfers/point)\n\n",
		vaEntries(p), vaSweepTransfers)
	tb = stats.NewTable("working set (pages)", "hits", "misses", "hit rate", "per-transfer (µs)")
	for _, pt := range r.IOTLBPoints() {
		tb.AddRow(pt.Pages, pt.Hits, pt.Misses,
			fmt.Sprintf("%.3f", pt.HitRate),
			fmt.Sprintf("%.2f", pt.PerTransfer.Microseconds()))
	}
	b.WriteString(tb.String())
	b.WriteByte('\n')
	return b.String()
}

func vaSweepMarkdown(r *Result, p Params) string {
	var b strings.Builder
	b.WriteString("\n## Virtual-address DMA — Table 1 through the IOMMU\n")
	b.WriteString("\n| method | shadow (µs) | va (µs) | paper (µs) |\n")
	b.WriteString("|---|---|---|---|\n")
	for _, row := range r.VAComparisons() {
		paper := "-"
		if row.PaperMean > 0 {
			paper = fmt.Sprintf("%.1f", row.PaperMean.Microseconds())
		}
		fmt.Fprintf(&b, "| %s | %.3f | %.3f | %s |\n",
			row.Method, row.ShadowMean.Microseconds(), row.VAMean.Microseconds(), paper)
	}
	fmt.Fprintf(&b, "\n### IOTLB hit rate (%d entries, cyclic full-page streams)\n", vaEntries(p))
	b.WriteString("\n| working set (pages) | hit rate | per-transfer (µs) |\n")
	b.WriteString("|---|---|---|\n")
	for _, pt := range r.IOTLBPoints() {
		fmt.Fprintf(&b, "| %d | %.3f | %.2f |\n",
			pt.Pages, pt.HitRate, pt.PerTransfer.Microseconds())
	}
	return b.String()
}

// PagingPolicies is the paging experiment's recovery-policy axis.
func PagingPolicies() []dma.RecoveryPolicy {
	return []dma.RecoveryPolicy{dma.RecoverStall, dma.RecoverBounce, dma.RecoverPin}
}

// PagingPages is the working-set axis (source device pages; +1 for the
// destination). Against pagingBudget resident pages it spans under-
// subscription through 4x oversubscription.
func PagingPages() []int { return []int{4, 8, 16, 32} }

const (
	pagingBudget    = 8
	pagingTransfers = 64
)

func pagingCells(Params) ([]Cell, error) {
	var cells []Cell
	for _, policy := range PagingPolicies() {
		for _, pages := range PagingPages() {
			policy, pages := policy, pages
			cells = append(cells, Cell{
				Method: policy.String(),
				Size:   uint64(pages),
				Config: fmt.Sprintf("budget %d", pagingBudget),
				Run: func() (Obs, bool, error) {
					r, err := userdma.PagingBench(policy, pages, pagingBudget, pagingTransfers)
					if err != nil {
						return Obs{}, false, fmt.Errorf("%v/%d pages: %w", policy, pages, err)
					}
					return Obs{Paging: []userdma.PagingResult{r}}, false, nil
				},
			})
		}
	}
	return cells, nil
}

// Paging runs the "paging" experiment on procs workers.
func Paging(procs int) ([]userdma.PagingResult, error) {
	r, err := RunNamed("paging", Params{Procs: procs})
	if err != nil {
		return nil, err
	}
	return r.PagingPoints(), nil
}

func pagingText(r *Result, _ Params) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Device paging — %d resident device pages, cyclic full-page streams (%d transfers/cell)\n",
		pagingBudget, pagingTransfers)
	fmt.Fprintf(&b, "machine: %s + IOMMU + kernel pager (LRU eviction, %s page-in)\n\n",
		MachineName(), "100µs")
	tb := stats.NewTable("policy", "pages", "oversub", "goodput (MB/s)", "p50 (µs)", "p99 (µs)", "faults", "stalls", "bounced", "pins", "evictions")
	for _, pt := range r.PagingPoints() {
		tb.AddRow(pt.Policy, pt.Pages,
			fmt.Sprintf("%.2fx", pt.Oversub),
			fmt.Sprintf("%.1f", pt.GoodputMBps),
			fmt.Sprintf("%.1f", pt.P50.Microseconds()),
			fmt.Sprintf("%.1f", pt.P99.Microseconds()),
			pt.Faults, pt.Stalls, pt.Bounced, pt.Pins, pt.Evictions)
	}
	b.WriteString(tb.String())
	b.WriteByte('\n')
	return b.String()
}

func pagingMarkdown(r *Result, _ Params) string {
	var b strings.Builder
	fmt.Fprintf(&b, "\n## Device paging — %d resident pages under stall/bounce/pin recovery\n", pagingBudget)
	b.WriteString("\n| policy | pages | oversub | goodput (MB/s) | p50 (µs) | p99 (µs) | evictions |\n")
	b.WriteString("|---|---|---|---|---|---|---|\n")
	for _, pt := range r.PagingPoints() {
		fmt.Fprintf(&b, "| %s | %d | %.2fx | %.1f | %.1f | %.1f | %d |\n",
			pt.Policy, pt.Pages, pt.Oversub, pt.GoodputMBps,
			pt.P50.Microseconds(), pt.P99.Microseconds(), pt.Evictions)
	}
	return b.String()
}
