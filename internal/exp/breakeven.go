package exp

// Experiment X6: the initiation-vs-transfer break-even study. The grid
// is method × size in method-major order — the same order the serial
// sweep measured and errored in.

import (
	"fmt"
	"strings"

	userdma "uldma/internal/core"
	"uldma/internal/stats"
)

func init() {
	Register(&Experiment{
		Name:  "breakeven",
		Doc:   "X6 — initiation share of total DMA cost across transfer sizes, with crossover",
		Cells: breakEvenCells,
		Render: map[Format]RenderFunc{
			Text:     breakEvenText,
			Markdown: breakEvenMarkdown,
		},
	})
}

// BreakEvenMethods is X6's method axis: the kernel baseline against
// the best user-level method.
func BreakEvenMethods() []userdma.Method {
	return []userdma.Method{userdma.KernelLevel{}, userdma.ExtShadow{}}
}

func breakEvenCells(p Params) ([]Cell, error) {
	var cells []Cell
	for _, method := range BreakEvenMethods() {
		// One pristine world per (method, config) family; every cell on
		// this row hydrates an independent clone from it instead of
		// rebuilding a machine — clones share memory copy-on-write and
		// are safe to expand in parallel.
		snap, err := userdma.NewWorld(userdma.ConfigFor(method))
		if err != nil {
			return nil, err
		}
		for _, size := range p.sizes() {
			method, size := method, size
			cells = append(cells, Cell{Method: method.Name(), Size: size, Run: func() (Obs, bool, error) {
				pt, err := userdma.BreakEvenCellFrom(snap, method, size)
				if err != nil {
					return Obs{}, false, fmt.Errorf("size %d: %w", size, err)
				}
				return Obs{Points: []userdma.BreakEvenPoint{pt}}, false, nil
			}})
		}
	}
	return cells, nil
}

// MethodPoints is one method's slice of the ordered break-even grid.
type MethodPoints struct {
	Method userdma.Method
	Points []userdma.BreakEvenPoint
}

// BreakEvenGroups slices an ordered breakeven result per method, in
// the method-axis order.
func BreakEvenGroups(r *Result, p Params) []MethodPoints {
	methods := BreakEvenMethods()
	per := len(p.sizes())
	pts := r.Points()
	if per == 0 || len(pts) != per*len(methods) {
		return nil
	}
	out := make([]MethodPoints, len(methods))
	for i, m := range methods {
		out[i] = MethodPoints{Method: m, Points: pts[i*per : (i+1)*per]}
	}
	return out
}

// BreakEven runs the "breakeven" experiment over the canonical size
// axis and returns the ordered per-method groups.
func BreakEven(procs int) ([]MethodPoints, error) {
	p := Params{Procs: procs}
	r, err := RunNamed("breakeven", p)
	if err != nil {
		return nil, err
	}
	return BreakEvenGroups(r, p), nil
}

// sizeHeaders renders the sweep's size columns ("8B", ..., "64KiB").
func sizeHeaders(sizes []uint64) []string {
	out := make([]string, 0, len(sizes))
	for _, s := range sizes {
		if s >= 1024 {
			out = append(out, fmt.Sprintf("%dKiB", s/1024))
		} else {
			out = append(out, fmt.Sprintf("%dB", s))
		}
	}
	return out
}

func breakEvenText(r *Result, p Params) string {
	var b strings.Builder
	b.WriteString("Break-even sweep (X6) — initiation share of total DMA cost\n")
	tb := stats.NewTable(append([]string{"DMA algorithm"}, sizeHeaders(p.sizes())...)...)
	for _, g := range BreakEvenGroups(r, p) {
		row := []any{g.Method.Name()}
		for _, pt := range g.Points {
			row = append(row, fmt.Sprintf("%.0f%%", 100*pt.InitShare))
		}
		tb.AddRow(row...)
		if size, ok := userdma.Crossover(g.Points); ok {
			fmt.Fprintf(&b, "%-26s transfer outweighs initiation from %d bytes\n", g.Method.Name()+":", size)
		}
	}
	b.WriteByte('\n')
	b.WriteString(tb.String())
	b.WriteByte('\n')
	return b.String()
}

func breakEvenMarkdown(r *Result, p Params) string {
	var b strings.Builder
	b.WriteString("\n## X6 — break-even: initiation share of total DMA cost\n")
	b.WriteString("\n| DMA algorithm |")
	for _, s := range p.sizes() {
		fmt.Fprintf(&b, " %dB |", s)
	}
	b.WriteString("\n|---|")
	for range p.sizes() {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	var crossovers []string
	for _, g := range BreakEvenGroups(r, p) {
		fmt.Fprintf(&b, "| %s |", g.Method.Name())
		for _, pt := range g.Points {
			fmt.Fprintf(&b, " %.0f%% |", 100*pt.InitShare)
		}
		b.WriteByte('\n')
		if size, ok := userdma.Crossover(g.Points); ok {
			crossovers = append(crossovers,
				fmt.Sprintf("%s: transfer outweighs initiation from %d bytes.", g.Method.Name(), size))
		}
	}
	b.WriteByte('\n')
	for _, line := range crossovers {
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String()
}
