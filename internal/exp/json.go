package exp

// Typed JSON rows: times are raw sim.Time values (picoseconds of
// simulated time), exact integers suitable for byte-for-byte regression
// comparison across code changes. The field names and tags are the wire
// format the tools have always emitted — keep them stable.

import (
	"fmt"

	userdma "uldma/internal/core"
	"uldma/internal/dma"
	"uldma/internal/machine"
)

// InitiationRow is one initiation measurement as the tools serialise it.
type InitiationRow struct {
	Method      string
	Iterations  int
	MeanPs      int64
	MinPs       int64
	MaxPs       int64
	PaperMeanPs int64 `json:",omitempty"`
}

// BreakEvenRow is one (size, cost split) point of the X6 sweep.
type BreakEvenRow struct {
	Size         uint64
	InitiationPs int64
	TransferPs   int64
	InitShare    float64
}

// TrendRow is one hardware era of the X7 trend.
type TrendRow struct {
	Era             string
	KernelInitPs    int64
	UserInitPs      int64
	KernelCrossover uint64
}

// OSLatRow is one OS-latency microbenchmark result.
type OSLatRow struct {
	Benchmark string
	MeanPs    int64
	CPUCycles int64
}

// ClusterRow is one initiation method's NOW message-passing result.
type ClusterRow struct {
	Method       string
	LatencyPs    int64
	InitiationPs int64
	InitShare    float64
}

// InitRow converts one InitiationResult to its wire row.
func InitRow(r userdma.InitiationResult) InitiationRow {
	return InitiationRow{
		Method: r.Method, Iterations: r.Iterations,
		MeanPs: int64(r.Mean), MinPs: int64(r.Min), MaxPs: int64(r.Max),
		PaperMeanPs: int64(r.PaperMean),
	}
}

// InitRows converts a result slice; nil in, nil out (so `omitempty`
// sections stay omitted).
func InitRows(rs []userdma.InitiationResult) []InitiationRow {
	var out []InitiationRow
	for _, r := range rs {
		out = append(out, InitRow(r))
	}
	return out
}

// BreakEvenRows converts one method's break-even points.
func BreakEvenRows(pts []userdma.BreakEvenPoint) []BreakEvenRow {
	var out []BreakEvenRow
	for _, pt := range pts {
		out = append(out, BreakEvenRow{
			Size: pt.Size, InitiationPs: int64(pt.Initiation),
			TransferPs: int64(pt.Transfer), InitShare: pt.InitShare,
		})
	}
	return out
}

// TrendRows converts the per-era trend points.
func TrendRows(pts []userdma.TrendPoint) []TrendRow {
	var out []TrendRow
	for _, pt := range pts {
		out = append(out, TrendRow{
			Era: pt.Era, KernelInitPs: int64(pt.KernelInit),
			UserInitPs: int64(pt.UserInit), KernelCrossover: pt.KernelCrossover,
		})
	}
	return out
}

// BusSweepJSON renders the sweep in the map shape the tools emit.
// encoding/json sorts the keys, and "PCI 33MHz" < "PCI 66MHz" <
// "TC 12.5MHz" is a fixed order, so the document is deterministic.
func BusSweepJSON(groups []FreqRows) map[string][]InitiationRow {
	out := make(map[string][]InitiationRow, len(groups))
	for _, g := range groups {
		out[g.Freq.String()] = InitRows(g.Rows)
	}
	return out
}

// BreakEvenJSON renders the per-method break-even map the tools emit.
func BreakEvenJSON(groups []MethodPoints) map[string][]BreakEvenRow {
	out := make(map[string][]BreakEvenRow, len(groups))
	for _, g := range groups {
		out[g.Method.Name()] = BreakEvenRows(g.Points)
	}
	return out
}

// OSLatRows converts an oslat result into wire rows, cycle counts
// included (same CPU clock the text renderer uses).
func OSLatRows(r *Result) []OSLatRow {
	freq := machine.Alpha3000TC(dma.ModePaired, 0).CPU.Freq
	var out []OSLatRow
	for _, row := range r.Rows() {
		out = append(out, OSLatRow{
			Benchmark: row.Name, MeanPs: int64(row.Mean),
			CPUCycles: freq.CyclesIn(row.Mean),
		})
	}
	return out
}

// FaultRow is one faultsweep grid cell as the tools serialise it. The
// Label is unique across the sweep, which is what keeps benchdiff's
// flattened keys unambiguous.
type FaultRow struct {
	Label       string
	Drop        float64
	Size        uint64
	Msgs        int
	MeanPs      int64
	P50Ps       int64
	P99Ps       int64
	GoodputMBps float64
	Retransmits uint64
	Timeouts    uint64
	Recredits   uint64
	Dropped     uint64
	Delivered   uint64
}

// RecoveryRow is one outage cell of the recovery experiment.
type RecoveryRow struct {
	Label       string
	OutagePs    int64
	RecoverPs   int64
	CompletePs  int64
	Retransmits uint64
	Timeouts    uint64
}

// FaultSearchRow is one seed's verdict of the faultsearch hunt.
type FaultSearchRow struct {
	Label     string
	Seed      uint64
	Schedules int
	Violation string `json:",omitempty"`
}

// FaultRows converts a faultsweep result into wire rows.
func FaultRows(r *Result) []FaultRow {
	var out []FaultRow
	for _, pt := range r.FaultPoints() {
		out = append(out, FaultRow{
			Label: pt.Label, Drop: pt.Drop, Size: pt.Size, Msgs: pt.Msgs,
			MeanPs: int64(pt.Mean), P50Ps: int64(pt.P50), P99Ps: int64(pt.P99),
			GoodputMBps: pt.GoodputMBps,
			Retransmits: pt.Retransmits, Timeouts: pt.Timeouts, Recredits: pt.Recredits,
			Dropped: pt.Dropped, Delivered: pt.Delivered,
		})
	}
	return out
}

// RecoveryRows converts a recovery result into wire rows.
func RecoveryRows(r *Result) []RecoveryRow {
	var out []RecoveryRow
	for _, pt := range r.RecoveryPoints() {
		out = append(out, RecoveryRow{
			Label: pt.Label, OutagePs: int64(pt.Outage),
			RecoverPs: int64(pt.Recover), CompletePs: int64(pt.Complete),
			Retransmits: pt.Retransmits, Timeouts: pt.Timeouts,
		})
	}
	return out
}

// FaultSearchRows converts a faultsearch result into wire rows.
func FaultSearchRows(r *Result) []FaultSearchRow {
	var out []FaultSearchRow
	for _, pt := range r.SearchPoints() {
		out = append(out, FaultSearchRow{
			Label: pt.Label, Seed: pt.Seed, Schedules: pt.Schedules, Violation: pt.Violation,
		})
	}
	return out
}

// ScaleRow is one sharded-NOW scale run as the tools serialise it.
// The simulated-time fields are exact integers safe to byte-compare;
// the Host* fields are wall-clock measurements of THIS host (filled
// only by clustersim -bench) and are never expected to reproduce —
// cmd/benchdiff treats every Host*-prefixed leaf as informational.
// Fingerprint is serialised as a hex string so no JSON reader rounds
// it through a float64.
type ScaleRow struct {
	Label   string
	Nodes   int
	Shards  int
	Arrival int
	Tenants int
	Bytes   uint64
	DurPs   int64

	Issued      uint64
	Completed   uint64
	MeanPs      int64
	P50Ps       int64
	P99Ps       int64
	GoodputMBps float64
	GoodputRPCs float64
	Deliveries  uint64
	Events      uint64
	Windows     uint64
	FinishPs    int64
	Fingerprint string

	HostNs           int64   `json:",omitempty"`
	HostEventsPerSec float64 `json:",omitempty"`
	HostCPUs         int     `json:",omitempty"`
}

// ScaleRowOf converts one ScalePoint to its wire row.
func ScaleRowOf(pt ScalePoint) ScaleRow {
	return ScaleRow{
		Label: fmt.Sprintf("%dn/%ds", pt.Nodes, pt.Shards),
		Nodes: pt.Nodes, Shards: pt.Shards,
		Arrival: pt.Arrival, Tenants: pt.Tenants,
		Bytes: pt.Bytes, DurPs: int64(pt.Dur),

		Issued: pt.Issued, Completed: pt.Completed,
		MeanPs: int64(pt.Mean), P50Ps: int64(pt.P50), P99Ps: int64(pt.P99),
		GoodputMBps: pt.GoodputMBps, GoodputRPCs: pt.GoodputRPCs,
		Deliveries: pt.Deliveries, Events: pt.Events, Windows: pt.Windows,
		FinishPs:    int64(pt.Finish),
		Fingerprint: fmt.Sprintf("%016x", pt.Fingerprint),
	}
}

// ScaleRows converts a scale result into wire rows.
func ScaleRows(r *Result) []ScaleRow {
	var out []ScaleRow
	for _, pt := range r.ScalePoints() {
		out = append(out, ScaleRowOf(pt))
	}
	return out
}

// ScaleMachineRow is one hosted-machine scale run as the tools
// serialise it. A separate type from ScaleRow — the flat scale wire
// format stays byte-stable — with the machine world's extra axes:
// which initiation protocol ran, the template boot time, the cluster's
// conservative lookahead and rack latency bounds, the fleet's engine
// aggregates, and the per-node machine-state digest (hex, like
// Fingerprint, so no JSON reader rounds it).
type ScaleMachineRow struct {
	Label    string
	Protocol string
	Nodes    int
	Shards   int
	Arrival  int
	Tenants  int
	Bytes    uint64
	DurPs    int64

	Issued      uint64
	Completed   uint64
	MeanPs      int64
	P50Ps       int64
	P99Ps       int64
	GoodputMBps float64
	GoodputRPCs float64
	Deliveries  uint64
	Events      uint64
	Windows     uint64
	FinishPs    int64
	Fingerprint string

	BootPs      int64
	LookaheadPs int64
	LatMinPs    int64
	LatMaxPs    int64

	EngStarted    uint64
	EngRejected   uint64
	EngCompleted  uint64
	EngBytesMoved uint64
	MachineDigest string

	HostNs           int64   `json:",omitempty"`
	HostEventsPerSec float64 `json:",omitempty"`
	HostCPUs         int     `json:",omitempty"`
}

// ScaleMachineRowOf converts one ScaleMachinePoint to its wire row.
func ScaleMachineRowOf(pt ScaleMachinePoint) ScaleMachineRow {
	return ScaleMachineRow{
		Label:    fmt.Sprintf("%s/%dn/%ds", pt.Protocol, pt.Nodes, pt.Shards),
		Protocol: pt.Protocol,
		Nodes:    pt.Nodes, Shards: pt.Shards,
		Arrival: pt.Arrival, Tenants: pt.Tenants,
		Bytes: pt.Bytes, DurPs: int64(pt.Dur),

		Issued: pt.Issued, Completed: pt.Completed,
		MeanPs: int64(pt.Mean), P50Ps: int64(pt.P50), P99Ps: int64(pt.P99),
		GoodputMBps: pt.GoodputMBps, GoodputRPCs: pt.GoodputRPCs,
		Deliveries: pt.Deliveries, Events: pt.Events, Windows: pt.Windows,
		FinishPs:    int64(pt.Finish),
		Fingerprint: fmt.Sprintf("%016x", pt.Fingerprint),

		BootPs: int64(pt.Boot), LookaheadPs: int64(pt.Lookahead),
		LatMinPs: int64(pt.LatMin), LatMaxPs: int64(pt.LatMax),

		EngStarted: pt.EngStarted, EngRejected: pt.EngRejected,
		EngCompleted: pt.EngCompleted, EngBytesMoved: pt.EngBytesMoved,
		MachineDigest: fmt.Sprintf("%016x", pt.MachineDigest),
	}
}

// ScaleMachineRows converts a scalemachine result into wire rows.
func ScaleMachineRows(r *Result) []ScaleMachineRow {
	var out []ScaleMachineRow
	for _, pt := range r.ScaleMachinePoints() {
		out = append(out, ScaleMachineRowOf(pt))
	}
	return out
}

// ClusterRows converts a clustersim result into wire rows.
func ClusterRows(r *Result) []ClusterRow {
	var out []ClusterRow
	for _, row := range r.Rows() {
		out = append(out, ClusterRow{
			Method: row.Name, LatencyPs: int64(row.Mean),
			InitiationPs: int64(row.Init),
			InitShare:    float64(row.Init) / float64(row.Mean),
		})
	}
	return out
}

// RingRow is one ringdepth point as the tools serialise it. Depth 0 is
// the protocol's unbatched baseline; BaselinePs repeats that baseline
// on every row so a reader can compute Speedup without a join (and
// Speedup carries it precomputed). Fingerprint is hex for the same
// no-float-rounding reason as ScaleRow.
type RingRow struct {
	Method      string
	Depth       uint64
	Batches     int
	Posted      uint64
	PerInitPs   int64
	BaselinePs  int64
	Speedup     float64
	GoodputMBps float64 `json:",omitempty"`
	Doorbells   uint64
	Completions uint64
	Fingerprint string
}

// RingRows converts a ringdepth result into wire rows.
func RingRows(r *Result) []RingRow {
	points := r.RingPoints()
	base := ringBaselines(points)
	var out []RingRow
	for _, pt := range points {
		row := RingRow{
			Method: pt.Method, Depth: pt.Depth,
			Batches: pt.Batches, Posted: pt.Posted,
			PerInitPs:   int64(pt.PerInit),
			GoodputMBps: pt.GoodputMBps,
			Doorbells:   pt.Doorbells, Completions: pt.Completions,
			Fingerprint: fmt.Sprintf("%016x", pt.Fingerprint),
		}
		if bl, ok := base[pt.Method]; ok {
			row.BaselinePs = int64(bl.PerInit)
			if pt.PerInit > 0 {
				row.Speedup = float64(bl.PerInit) / float64(pt.PerInit)
			}
		}
		out = append(out, row)
	}
	return out
}

// ChurnRow is one ringchurn point as the tools serialise it.
type ChurnRow struct {
	Policy        string
	Procs         int
	Contexts      int
	Doorbells     uint64
	Posted        uint64
	Dropped       uint64
	Steals        uint64
	Waits         uint64
	MeanAcquirePs int64
	ElapsedPs     int64
	Fingerprint   string
}

// VARow is one vasweep Table 1 comparison as the tools serialise it:
// the same method measured through the physical shadow window and
// through the IOMMU's VA window.
type VARow struct {
	Method       string
	Iterations   int
	ShadowMeanPs int64
	VAMeanPs     int64
	PaperMeanPs  int64 `json:",omitempty"`
}

// VARows converts a vasweep result's Table 1 comparisons into wire
// rows.
func VARows(r *Result) []VARow {
	var out []VARow
	for _, row := range r.VAComparisons() {
		out = append(out, VARow{
			Method: row.Method, Iterations: row.Iterations,
			ShadowMeanPs: int64(row.ShadowMean),
			VAMeanPs:     int64(row.VAMean),
			PaperMeanPs:  int64(row.PaperMean),
		})
	}
	return out
}

// IOTLBRow is one working-set point of the vasweep IOTLB sweep.
// Fingerprint is hex for the same no-float-rounding reason as ScaleRow.
type IOTLBRow struct {
	Pages         int
	TLBEntries    int
	Transfers     int
	Hits          uint64
	Misses        uint64
	HitRate       float64
	PerTransferPs int64
	Fingerprint   string
}

// IOTLBRows converts a vasweep result's IOTLB points into wire rows.
func IOTLBRows(r *Result) []IOTLBRow {
	var out []IOTLBRow
	for _, pt := range r.IOTLBPoints() {
		out = append(out, IOTLBRow{
			Pages: pt.Pages, TLBEntries: pt.TLBEntries, Transfers: pt.Transfers,
			Hits: pt.Hits, Misses: pt.Misses, HitRate: pt.HitRate,
			PerTransferPs: int64(pt.PerTransfer),
			Fingerprint:   fmt.Sprintf("%016x", pt.Fingerprint),
		})
	}
	return out
}

// PagingRow is one (policy, working set) cell of the paging grid as
// the tools serialise it.
type PagingRow struct {
	Policy      string
	Pages       int
	Budget      int
	Oversub     float64
	Transfers   int
	GoodputMBps float64
	P50Ps       int64
	P99Ps       int64
	ElapsedPs   int64
	Faults      uint64
	Stalls      uint64
	Bounced     uint64
	Pins        uint64
	Evictions   uint64
	PageIns     uint64
	Fingerprint string
}

// PagingRows converts a paging result into wire rows.
func PagingRows(r *Result) []PagingRow {
	var out []PagingRow
	for _, pt := range r.PagingPoints() {
		out = append(out, PagingRow{
			Policy: pt.Policy, Pages: pt.Pages, Budget: pt.Budget,
			Oversub: pt.Oversub, Transfers: pt.Transfers,
			GoodputMBps: pt.GoodputMBps,
			P50Ps:       int64(pt.P50), P99Ps: int64(pt.P99),
			ElapsedPs: int64(pt.Elapsed),
			Faults:    pt.Faults, Stalls: pt.Stalls, Bounced: pt.Bounced,
			Pins: pt.Pins, Evictions: pt.Evictions, PageIns: pt.PageIns,
			Fingerprint: fmt.Sprintf("%016x", pt.Fingerprint),
		})
	}
	return out
}

// ChurnRows converts a ringchurn result into wire rows.
func ChurnRows(r *Result) []ChurnRow {
	var out []ChurnRow
	for _, pt := range r.ChurnPoints() {
		out = append(out, ChurnRow{
			Policy: pt.Policy, Procs: pt.Procs, Contexts: pt.Contexts,
			Doorbells: pt.Doorbells, Posted: pt.Posted, Dropped: pt.Dropped,
			Steals: pt.Steals, Waits: pt.Waits,
			MeanAcquirePs: int64(pt.MeanAcquire),
			ElapsedPs:     int64(pt.Elapsed),
			Fingerprint:   fmt.Sprintf("%016x", pt.Fingerprint),
		})
	}
	return out
}
