package exp

// The `scale` experiment: the paper's per-transfer numbers extrapolated
// to a datacenter-scale NOW on the sharded engine (net.ShardedCluster).
// An open-loop, multi-tenant traffic generator issues user-level DMA
// RPCs: every node hosts Tenants independent Poisson-ish arrival
// streams (integer-jittered uniform inter-arrival — deliberately no
// floating point in the event path, so the stream is exact on every
// host); each RPC serializes through the client's user-level initiation
// port, crosses the fabric, occupies the server's engine for a service
// turnaround, and returns a small completion write. The experiment
// reports goodput and the client-observed latency distribution
// (mean/p50/p99), plus the engine-side totals (deliveries, events,
// windows) the host events/sec throughput metric is computed from.
//
// Everything reported here is layout-invariant: the same (nodes, seed,
// workload) yields byte-identical results at every shard count and
// every worker count (TestScaleShardParity), which is what makes the
// experiment safe to golden and to benchdiff.

import (
	"fmt"
	"strings"

	"uldma/internal/net"
	"uldma/internal/par"
	"uldma/internal/sim"
	"uldma/internal/stats"
)

func init() {
	Register(&Experiment{
		Name:  "scale",
		Doc:   "sharded NOW at scale: open-loop multi-tenant user-level DMA RPC traffic",
		Cells: scaleCells,
		Render: map[Format]RenderFunc{
			Text: scaleText,
		},
	})
}

// Model constants: Table-1-magnitude costs for a user-level DMA RPC,
// fixed so the experiment's axis is scale, not method.
const (
	// scaleInitCost is the client-side user-level initiation cost per
	// RPC (the few-microsecond store sequence the paper measures).
	// Back-to-back RPCs from one node queue behind each other on it.
	scaleInitCost = 2 * sim.Microsecond
	// scaleSrvCost is the server-side turnaround: validate the request,
	// start the response DMA. The server engine is a serial resource.
	scaleSrvCost = 4 * sim.Microsecond
	// scaleRespBytes is the completion write the server returns.
	scaleRespBytes = 16
	// scaleMaxWindows bounds a runaway synchronizer.
	scaleMaxWindows = 1 << 40
)

// Message kinds on the sharded fabric.
const (
	scaleKindReq  uint8 = 1
	scaleKindResp uint8 = 2
)

// ScalePoint is one scale run's complete observation.
type ScalePoint struct {
	Nodes   int
	Shards  int
	Arrival int // per-node RPC arrival rate, RPCs/s
	Tenants int
	Bytes   uint64   // request payload size
	Dur     sim.Time // arrival-window length

	Issued    uint64 // RPCs issued inside the arrival window
	Completed uint64 // RPCs whose completion write landed

	Mean sim.Time // client-observed RPC latency (arrival -> completion)
	P50  sim.Time
	P99  sim.Time

	// GoodputMBps is completed request payload per simulated second.
	GoodputMBps float64
	// GoodputRPCs is completed RPCs per simulated second.
	GoodputRPCs float64

	Deliveries uint64   // link deliveries (requests + responses)
	Events     uint64   // events fired across all shards
	Windows    uint64   // synchronizer windows
	Finish     sim.Time // last event's timestamp

	// Fingerprint digests the world's layout-invariant final state
	// (net.ShardedCluster.Fingerprint); the parity tests pin it across
	// shard and worker counts.
	Fingerprint uint64
}

// scaleWorld is the traffic generator's model state. Every slice is
// indexed by node and touched only by that node's events — the
// node-local rule the sharded engine's determinism rests on.
type scaleWorld struct {
	c        *net.ShardedCluster
	nodes    int
	interval sim.Time // mean per-tenant inter-arrival
	end      sim.Time // arrival window close
	bytes    uint64

	nextFree  []sim.Time   // client initiation port busy-until
	srvFree   []sim.Time   // server engine busy-until
	issueAt   [][]sim.Time // per client: arrival instant of RPC seq i
	lats      [][]sim.Time // per client: completed RPC latencies
	issued    []uint64
	completed []uint64
}

// scaleParams resolves the scale knobs with their conventional
// defaults (the cmd/clustersim flag defaults mirror these).
func scaleParams(p Params) (nodes, shards, arrival, tenants int, bytes uint64, dur sim.Time, seed uint64, err error) {
	nodes, shards, arrival, tenants = p.Nodes, p.Shards, p.Arrival, p.Tenants
	bytes, dur, seed = p.ScaleBytes, p.ScaleDur, p.ScaleSeed
	if nodes == 0 {
		nodes = 32
	}
	if shards == 0 {
		shards = 4
	}
	if arrival == 0 {
		arrival = 20000
	}
	if tenants == 0 {
		tenants = 2
	}
	if bytes == 0 {
		bytes = 64
	}
	if dur == 0 {
		dur = 2 * sim.Millisecond
	}
	if seed == 0 {
		seed = 1
	}
	switch {
	case nodes < 2:
		err = fmt.Errorf("exp: scale needs at least 2 nodes (RPCs need a remote peer), got %d", nodes)
	case shards < 1 || shards > nodes:
		err = fmt.Errorf("exp: scale shard count %d out of range 1..%d (one node per shard minimum)", shards, nodes)
	case arrival < 0:
		err = fmt.Errorf("exp: scale arrival rate must be positive, got %d", arrival)
	case tenants < 1:
		err = fmt.Errorf("exp: scale needs at least 1 tenant, got %d", tenants)
	case dur < 0:
		err = fmt.Errorf("exp: scale duration must be positive, got %v", dur)
	}
	return
}

// RunScale builds one sharded world under p and runs it to completion
// with the given intra-world worker count (<= 0 selects GOMAXPROCS).
// The result is identical for every workers value — the sharded
// engine's contract — so callers choose workers purely for host speed.
func RunScale(p Params, workers int) (ScalePoint, error) {
	pt, _, _, err := runScaleWorld(p, workers, nil)
	return pt, err
}

// RunScaleFaulted runs the same world with a fault plane attached to
// the cross-shard links (judged per message in canonical flush order on
// the coordinator) and additionally returns the plane's drop and
// duplicate tallies. A nil plane — or one whose plan is empty, like a
// zero-plan fault.Injector — reproduces RunScale byte for byte.
func RunScaleFaulted(p Params, workers int, plane net.FaultPlane) (pt ScalePoint, drops, dups uint64, err error) {
	return runScaleWorld(p, workers, plane)
}

func runScaleWorld(p Params, workers int, plane net.FaultPlane) (ScalePoint, uint64, uint64, error) {
	nodes, shards, arrival, tenants, bytes, dur, seed, err := scaleParams(p)
	if err != nil {
		return ScalePoint{}, 0, 0, err
	}
	c, err := net.NewShardedCluster(net.ShardedConfig{
		Nodes:     nodes,
		Shards:    shards,
		Link:      net.Gigabit(),
		Seed:      seed,
		QueueHint: 4 * nodes / shards,
	})
	if err != nil {
		return ScalePoint{}, 0, 0, err
	}
	if plane != nil {
		c.SetFaultPlane(plane)
	}
	w := &scaleWorld{
		c:     c,
		nodes: nodes,
		// Per-tenant mean inter-arrival: Tenants streams per node add
		// up to the per-node rate. Integer picosecond arithmetic only.
		interval:  sim.Time(uint64(sim.Second) * uint64(tenants) / uint64(arrival)),
		end:       dur,
		bytes:     bytes,
		nextFree:  make([]sim.Time, nodes),
		srvFree:   make([]sim.Time, nodes),
		issueAt:   make([][]sim.Time, nodes),
		lats:      make([][]sim.Time, nodes),
		issued:    make([]uint64, nodes),
		completed: make([]uint64, nodes),
	}
	if w.interval <= 0 {
		return ScalePoint{}, 0, 0, fmt.Errorf("exp: scale arrival rate %d/node too high for %d tenants (zero inter-arrival)", arrival, tenants)
	}
	c.SetDeliver(w.deliver)
	// Prime every tenant stream with a jittered first arrival. Draws
	// happen in fixed (node, tenant) order on each node's own stream,
	// so priming is layout-invariant by construction.
	for n := 0; n < nodes; n++ {
		for t := 0; t < tenants; t++ {
			w.scheduleArrival(n, w.jitter(n, 0))
		}
	}
	if err := c.Run(par.Workers(workers), scaleMaxWindows); err != nil {
		return ScalePoint{}, 0, 0, err
	}
	drops, dups := c.FaultStats()
	return w.observe(arrival, tenants, dur), drops, dups, nil
}

// jitter draws the next inter-arrival gap for a stream on node n:
// uniform in [interval/2, 3*interval/2), mean = interval, all-integer.
func (w *scaleWorld) jitter(n int, now sim.Time) sim.Time {
	return now + w.interval/2 + sim.Time(w.c.Rand(n).Uint64()%uint64(w.interval))
}

func (w *scaleWorld) scheduleArrival(n int, at sim.Time) {
	w.c.At(n, at, func(now sim.Time) { w.arrive(n, now) })
}

// arrive is one RPC arrival on node n: keep the stream alive, pick a
// uniform remote peer, queue through the client initiation port, send.
func (w *scaleWorld) arrive(n int, now sim.Time) {
	rng := w.c.Rand(n)
	if next := w.jitter(n, now); next < w.end {
		w.scheduleArrival(n, next)
	}
	dst := rng.Intn(w.nodes - 1)
	if dst >= n {
		dst++ // uniform over the other nodes, never self
	}
	start := now
	if w.nextFree[n] > start {
		start = w.nextFree[n]
	}
	done := start + scaleInitCost
	w.nextFree[n] = done
	seq := uint64(len(w.issueAt[n]))
	w.issueAt[n] = append(w.issueAt[n], now)
	w.issued[n]++
	w.c.Send(n, dst, scaleKindReq, w.bytes, seq, done)
}

// deliver is the receive hook: requests occupy the server engine and
// return a completion write; completions close the latency sample.
func (w *scaleWorld) deliver(m net.SMsg, now sim.Time) {
	switch m.Kind {
	case scaleKindReq:
		d := m.Dst
		start := now
		if w.srvFree[d] > start {
			start = w.srvFree[d]
		}
		done := start + scaleSrvCost
		w.srvFree[d] = done
		w.c.Send(d, m.Src, scaleKindResp, scaleRespBytes, m.Arg, done)
	case scaleKindResp:
		d := m.Dst
		w.lats[d] = append(w.lats[d], now-w.issueAt[d][m.Arg])
		w.completed[d]++
	}
}

// observe folds the finished world into a ScalePoint. Per-node samples
// concatenate in node order, so the fold is layout-invariant.
func (w *scaleWorld) observe(arrival, tenants int, dur sim.Time) ScalePoint {
	var sample stats.Sample
	var issued, completed uint64
	for n := 0; n < w.nodes; n++ {
		issued += w.issued[n]
		completed += w.completed[n]
		for _, l := range w.lats[n] {
			sample.Add(l)
		}
	}
	t := w.c.Totals()
	pt := ScalePoint{
		Nodes:   w.nodes,
		Shards:  w.c.Config().Shards,
		Arrival: arrival,
		Tenants: tenants,
		Bytes:   w.bytes,
		Dur:     dur,

		Issued:    issued,
		Completed: completed,
		Mean:      sample.Mean(),
		P50:       sample.Percentile(50),
		P99:       sample.Percentile(99),

		Deliveries:  t.Delivered,
		Events:      t.Events,
		Windows:     t.Windows,
		Finish:      t.Finish,
		Fingerprint: w.c.Fingerprint(),
	}
	if t.Finish > 0 {
		secs := float64(t.Finish) / 1e12
		pt.GoodputMBps = float64(completed) * float64(w.bytes) / secs / 1e6
		pt.GoodputRPCs = float64(completed) / secs
	}
	return pt
}

// scaleCells expands the experiment: one cell, one sharded world. The
// grid stays width-one because the world already spans the whole
// cluster; p.Procs becomes the INTRA-world worker count instead of the
// usual cell fan-out (there is nothing else to fan out).
func scaleCells(p Params) ([]Cell, error) {
	nodes, shards, _, _, _, _, _, err := scaleParams(p)
	if err != nil {
		return nil, err
	}
	cfg := fmt.Sprintf("%dn/%ds", nodes, shards)
	return []Cell{{Config: cfg, Run: func() (Obs, bool, error) {
		pt, err := RunScale(p, p.Procs)
		if err != nil {
			return Obs{}, false, err
		}
		return Obs{Scale: []ScalePoint{pt}}, false, nil
	}}}, nil
}

func scaleText(r *Result, p Params) string {
	var b strings.Builder
	for _, pt := range r.ScalePoints() {
		fmt.Fprintf(&b, "NOW at scale — %d nodes, %d shards, %d tenants/node, %d RPC/s/node, %dB requests, %v window\n\n",
			pt.Nodes, pt.Shards, pt.Tenants, pt.Arrival, pt.Bytes, pt.Dur)
		tb := stats.NewTable("metric", "value")
		tb.AddRow("RPCs issued", pt.Issued)
		tb.AddRow("RPCs completed", pt.Completed)
		tb.AddRow("goodput", fmt.Sprintf("%.1f MB/s (%.0f RPC/s)", pt.GoodputMBps, pt.GoodputRPCs))
		tb.AddRow("latency p50", pt.P50)
		tb.AddRow("latency p99", pt.P99)
		tb.AddRow("latency mean", pt.Mean)
		tb.AddRow("link deliveries", pt.Deliveries)
		tb.AddRow("events fired", pt.Events)
		tb.AddRow("sync windows", pt.Windows)
		tb.AddRow("finish", pt.Finish)
		tb.AddRow("fingerprint", fmt.Sprintf("%016x", pt.Fingerprint))
		b.WriteString(tb.String())
		b.WriteByte('\n')
	}
	b.WriteString("One open-loop multi-tenant RPC generator per node on the sharded engine;\n")
	b.WriteString("identical output at every shard and worker count (the determinism pin).\n")
	return b.String()
}
