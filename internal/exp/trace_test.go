package exp

// Tests for the shared -trace-out plumbing: the default Table-1
// scenario and the faultsearch seed replay must both render valid,
// deterministic Perfetto trace_event documents.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	userdma "uldma/internal/core"
	"uldma/internal/obs"
)

// validatePerfetto decodes data and checks the trace_event invariants a
// viewer needs (the same ones internal/obs pins at the writer level):
// displayTimeUnit present, every record carries name/ph/pid/tid, X
// events carry dur, i events carry s. Returns the event maps.
func validatePerfetto(t *testing.T, data []byte) []map[string]any {
	t.Helper()
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q, want ns", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no traceEvents")
	}
	for _, e := range doc.TraceEvents {
		for _, key := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := e[key]; !ok {
				t.Fatalf("event lacks %q: %v", key, e)
			}
		}
		switch e["ph"] {
		case "M":
		case "X":
			if _, ok := e["dur"]; !ok {
				t.Fatalf("X event lacks dur: %v", e)
			}
		case "i":
			if e["s"] != "t" {
				t.Fatalf("instant lacks s:t: %v", e)
			}
		default:
			t.Fatalf("unknown phase %v", e["ph"])
		}
	}
	return doc.TraceEvents
}

// countCats tallies how many events carry each thread-name category
// row (metadata rows excluded).
func phases(events []map[string]any) map[string]int {
	out := map[string]int{}
	for _, e := range events {
		out[e["ph"].(string)]++
	}
	return out
}

// TestDefaultTraceScenarioSchema renders the default -trace-out
// scenario (one Table-1 world per method) and validates the document:
// one Perfetto process per method, named after it, with real span and
// instant traffic, and byte-identical across two renders.
func TestDefaultTraceScenarioSchema(t *testing.T) {
	procs, err := DefaultTraceScenario()
	if err != nil {
		t.Fatal(err)
	}
	methods := userdma.Methods()
	if len(procs) != len(methods) {
		t.Fatalf("got %d process rows, want %d (one per method)", len(procs), len(methods))
	}
	for i, p := range procs {
		if p.Name != methods[i].Name() {
			t.Fatalf("process %d named %q, want %q", i, p.Name, methods[i].Name())
		}
		if len(p.Events) == 0 {
			t.Fatalf("process %q has no events", p.Name)
		}
	}
	render := func() []byte {
		f := filepath.Join(t.TempDir(), "trace.json")
		if err := writeTraceTo(f, procs); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	data := render()
	events := validatePerfetto(t, data)
	ph := phases(events)
	if ph["X"] == 0 || ph["i"] == 0 {
		t.Fatalf("scenario rendered no spans or no instants: %v", ph)
	}
	if string(render()) != string(data) {
		t.Fatal("two renders of the same scenario differ")
	}
}

// TestFaultReplaySchema replays one faultsearch seed through the
// traced path and validates the document: valid trace_event JSON, a
// process row naming the seed and plan, syscall/sched/link activity
// present, and the search's verdict restated.
func TestFaultReplaySchema(t *testing.T) {
	out := filepath.Join(t.TempDir(), "replay.json")
	old := *traceOut
	*traceOut = out
	defer func() { *traceOut = old }()

	verdict, err := FaultReplay(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if verdict != "exactly-once, in order" {
		t.Fatalf("seed 1 verdict = %q; the bounded search passes this seed, so the straight-line replay must too", verdict)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	events := validatePerfetto(t, data)

	// The replay is a full cluster run of the user-level channel: the
	// document must show bus traffic, DMA windows, link deliveries,
	// scheduler decisions and msg recovery machinery — and, tellingly,
	// it may show NO syscall spans at all (the paper's point: the data
	// path never crosses the kernel).
	cats := map[string]bool{}
	var procName string
	for _, e := range events {
		switch e["ph"] {
		case "M":
			if e["name"] == "process_name" {
				procName = e["args"].(map[string]any)["name"].(string)
			}
		default:
			if tid, ok := e["tid"].(float64); ok && int(tid) >= 1 {
				cats[obs.Category(int(tid)-1).String()] = true
			}
		}
	}
	if procName == "" {
		t.Fatal("no process_name metadata row")
	}
	for _, want := range []string{"faultsearch seed=1", "plan="} {
		if !strings.Contains(procName, want) {
			t.Fatalf("process row %q does not mention %q", procName, want)
		}
	}
	for _, want := range []string{"bus", "dma", "sched", "link", "msg"} {
		if !cats[want] {
			t.Fatalf("replay document has no %q events (saw %v)", want, cats)
		}
	}
}
