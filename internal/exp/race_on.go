//go:build race

package exp

// raceEnabled trims the heaviest determinism pins when the race
// detector multiplies event costs by an order of magnitude; the
// properties they pin are identical, only the grid shrinks.
const raceEnabled = true
