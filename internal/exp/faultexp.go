package exp

// The fault-plane experiments: what reliability costs on a NOW whose
// links misbehave. All three ride the same substrate — a two-node (or,
// for the search, one-node loopback) cluster whose fabric carries an
// internal/fault plane, with the reliable user-level channel
// (msg.NewReliableChannel) on top:
//
//   - faultsweep: goodput and p50/p99 per-message latency across a
//     drop-rate × payload-size grid, with the recovery traffic
//     (retransmissions, re-credits) the plane forced;
//   - recovery: time-to-recover after a link-down window of varying
//     length — how long after the link heals until the first payload
//     lands again;
//   - faultsearch: a bounded model-checking hunt (proc.Explore) over
//     scheduler interleavings × seeded fault plans, asserting
//     exactly-once in-order delivery; a violating (seed, schedule)
//     pair stops the sweep and is reported in replayable form.
//
// Every cell owns its world and its seeded plane, so the cells fan out
// on the worker pool with byte-identical results for any -procs value.

import (
	"fmt"
	"strings"

	userdma "uldma/internal/core"
	"uldma/internal/fault"
	"uldma/internal/msg"
	"uldma/internal/net"
	"uldma/internal/proc"
	"uldma/internal/sim"
	"uldma/internal/stats"
)

func init() {
	Register(&Experiment{
		Name:  "faultsweep",
		Doc:   "reliable channel under loss: goodput and p50/p99 latency across drop rate x size",
		Cells: faultSweepCells,
		Render: map[Format]RenderFunc{
			Text:     faultSweepText,
			Markdown: faultSweepMarkdown,
		},
	})
	Register(&Experiment{
		Name:  "recovery",
		Doc:   "link-down outage windows: time until the reliable stream moves again",
		Cells: recoveryCells,
		Render: map[Format]RenderFunc{
			Text:     recoveryText,
			Markdown: recoveryMarkdown,
		},
	})
	Register(&Experiment{
		Name:  "faultsearch",
		Doc:   "bounded interleaving x fault-plan search for exactly-once in-order delivery",
		Cells: faultSearchCells,
		Render: map[Format]RenderFunc{
			Text:     faultSearchText,
			Markdown: faultSearchMarkdown,
		},
	})
}

// FaultPoint is one (drop rate, payload size) cell of the faultsweep.
type FaultPoint struct {
	Label string // unique grid label, e.g. "drop=0.05/256B"
	Drop  float64
	Size  uint64
	Msgs  int

	Mean sim.Time // mean send-to-deliver latency
	P50  sim.Time
	P99  sim.Time
	// GoodputMBps is delivered payload bytes per simulated second,
	// first send to last delivery, in MB/s (1 MB = 1e6 bytes).
	GoodputMBps float64

	Retransmits uint64 // messages retransmitted by the sender
	Timeouts    uint64 // retransmit rounds fired
	Recredits   uint64 // receiver re-wrote its credit word
	Dropped     uint64 // fabric payloads the plane killed
	Delivered   uint64 // fabric payloads landed
}

// RecoveryPoint is one outage-length cell of the recovery experiment.
type RecoveryPoint struct {
	Label  string   // e.g. "down=500µs"
	Outage sim.Time // length of the link-down window
	// Recover is the gap between the link healing and the first
	// delivery after it — the retransmit machinery's reaction time.
	Recover sim.Time
	// Complete is when the last message of the stream landed.
	Complete    sim.Time
	Retransmits uint64
	Timeouts    uint64
}

// FaultSearchPoint is one seed's slice of the faultsearch hunt.
type FaultSearchPoint struct {
	Label     string // e.g. "seed=3"
	Seed      uint64
	Schedules int    // complete schedules model-checked
	Violation string // "" when every schedule delivered exactly-once in-order
}

// FaultDrops is the faultsweep's canonical drop-rate axis. Zero is the
// control row: a zero-fault plane is inert, so it doubles as the
// pay-for-what-you-use baseline.
func FaultDrops() []float64 { return []float64{0, 0.05, 0.20} }

// FaultSizes is the faultsweep's payload axis (bytes; slot payloads,
// multiples of 8 that keep a 4-slot ring inside the channel window).
func FaultSizes() []uint64 { return []uint64{64, 256, 960} }

// RecoveryOutages is the recovery experiment's outage-length axis.
func RecoveryOutages() []sim.Time {
	return []sim.Time{200 * sim.Microsecond, 500 * sim.Microsecond, sim.Millisecond}
}

// FaultPlanForSeed derives the faultsearch's (and the property test
// family's) random-but-replayable plan from one integer, so a failing
// report names the whole scenario by its seed.
func FaultPlanForSeed(seed uint64) fault.Plan {
	prng := sim.NewRand(seed * 0x9e3779b97f4a7c15)
	return fault.Plan{Default: fault.LinkFaults{
		Drop:      float64(prng.Intn(25)) / 100,
		Dup:       float64(prng.Intn(15)) / 100,
		Reorder:   float64(prng.Intn(20)) / 100,
		ReorderBy: 15 * sim.Microsecond,
		Jitter:    sim.Time(prng.Intn(4)) * sim.Microsecond,
	}}
}

// streamResult is what one reliable-stream world reports back.
type streamResult struct {
	latency   stats.Sample // per message: delivery time - send start
	sendTimes []sim.Time
	recvTimes []sim.Time
	bytes     uint64
	tx        msg.RStats
	rx        msg.RStats
	fabric    net.FabricStats
}

// fmsg deterministically fills buf for message i (and is what the
// receiver checks against, so a sweep cell doubles as a correctness
// assertion, not just a stopwatch).
func fmsg(i int, buf []byte) {
	for k := range buf {
		buf[k] = byte(i*131 + k*7 + 1)
	}
}

// reliableStream drives total messages of size bytes through a
// fresh two-node cluster behind (plan, seed). pace > 0 spaces the send
// starts; linger keeps the receiver answering retransmissions after
// the last delivery (needed whenever the plan can eat the final ack).
func reliableStream(plan fault.Plan, seed uint64, cfg msg.ReliableConfig,
	total int, size uint64, pace, linger sim.Time) (*streamResult, error) {

	method := userdma.ExtShadow{}
	cluster, err := net.NewCluster(2, userdma.ConfigFor(method), net.Gigabit())
	if err != nil {
		return nil, err
	}
	cluster.Fabric.SetFaultPlane(fault.New(plan, seed))
	n0, n1 := cluster.Nodes[0], cluster.Nodes[1]
	res := &streamResult{}

	var tx *msg.RSender
	var rx *msg.RReceiver
	sender := n0.NewProcess("tx", func(c *proc.Context) error {
		buf := make([]byte, size)
		for i := 0; i < total; i++ {
			fmsg(i, buf)
			start := n0.Clock.Now()
			res.sendTimes = append(res.sendTimes, start)
			if err := tx.Send(c, buf); err != nil {
				return fmt.Errorf("message %d: %w", i, err)
			}
			for pace > 0 && n0.Clock.Now() < start+pace {
				c.Spin(2000)
			}
		}
		return tx.Flush(c)
	})
	recver := n1.NewProcess("rx", func(c *proc.Context) error {
		buf := make([]byte, size)
		want := make([]byte, size)
		for i := 0; i < total; i++ {
			n, err := rx.Recv(c, buf)
			if err != nil {
				return fmt.Errorf("message %d: %w", i, err)
			}
			res.recvTimes = append(res.recvTimes, n1.Clock.Now())
			fmsg(i, want)
			if n != int(size) || string(buf[:n]) != string(want) {
				return fmt.Errorf("message %d corrupted", i)
			}
			res.bytes += uint64(n)
		}
		return rx.Linger(c, linger)
	})

	h, err := method.Attach(n0, sender)
	if err != nil {
		return nil, err
	}
	tx, rx, err = msg.NewReliableChannel(n0, sender, h, n1, recver, 1, cfg)
	if err != nil {
		return nil, err
	}
	if err := cluster.RunRoundRobin(8, 1<<62); err != nil {
		return nil, err
	}
	if sender.Err() != nil {
		return nil, fmt.Errorf("sender: %w", sender.Err())
	}
	if recver.Err() != nil {
		return nil, fmt.Errorf("receiver: %w", recver.Err())
	}
	for i := range res.recvTimes {
		res.latency.Add(res.recvTimes[i] - res.sendTimes[i])
	}
	res.tx, res.rx, res.fabric = tx.Stats(), rx.Stats(), cluster.Fabric.Stats()
	return res, nil
}

func faultMsgs(p Params) int {
	if p.Msgs > 0 {
		return p.Msgs
	}
	return 24
}

func faultSweepCells(p Params) ([]Cell, error) {
	total := faultMsgs(p)
	var cells []Cell
	for di, drop := range FaultDrops() {
		for si, size := range FaultSizes() {
			drop, size := drop, size
			seed := uint64(1000 + di*len(FaultSizes()) + si)
			label := fmt.Sprintf("drop=%.2f/%dB", drop, size)
			cells = append(cells, Cell{Config: label, Size: size, Seed: seed, Run: func() (Obs, bool, error) {
				plan := fault.Plan{Default: fault.LinkFaults{Drop: drop}}
				linger := sim.Time(0)
				if drop > 0 {
					linger = 20 * sim.Millisecond
				}
				// RTO must clear the worst-case queueing delay of a full
				// 4-slot burst of the largest payload (~260µs), or the
				// control rows pay spurious retransmissions.
				cfg := msg.ReliableConfig{
					Config: msg.Config{Slots: 4, SlotPayload: int(size)},
					RTO:    500 * sim.Microsecond,
				}
				r, err := reliableStream(plan, seed, cfg, total, size, 0, linger)
				if err != nil {
					return Obs{}, false, fmt.Errorf("%s: %w", label, err)
				}
				elapsed := r.recvTimes[len(r.recvTimes)-1] - r.sendTimes[0]
				pt := FaultPoint{
					Label: label, Drop: drop, Size: size, Msgs: total,
					Mean: r.latency.Mean(), P50: r.latency.Percentile(50), P99: r.latency.Percentile(99),
					GoodputMBps: float64(r.bytes) / (float64(elapsed) / 1e12) / 1e6,
					Retransmits: r.tx.Retransmits, Timeouts: r.tx.Timeouts,
					Recredits: r.rx.Recredits,
					Dropped:   r.fabric.FaultDropped, Delivered: r.fabric.Delivered,
				}
				return Obs{Fault: []FaultPoint{pt}}, false, nil
			}})
		}
	}
	return cells, nil
}

func recoveryCells(p Params) ([]Cell, error) {
	total := faultMsgs(p)
	if p.Msgs <= 0 {
		total = 40
	}
	const outageFrom = 100 * sim.Microsecond
	var cells []Cell
	for i, outage := range RecoveryOutages() {
		outage := outage
		label := fmt.Sprintf("down=%v", outage)
		cells = append(cells, Cell{Config: label, Seed: uint64(i + 1), Run: func() (Obs, bool, error) {
			plan := fault.Plan{Links: map[fault.Link]fault.LinkFaults{
				{Src: 0, Dst: 1}: {Down: []fault.Window{{From: outageFrom, Until: outageFrom + outage}}},
			}}
			cfg := msg.ReliableConfig{Config: msg.Config{Slots: 4, SlotPayload: 64}}
			r, err := reliableStream(plan, uint64(i+1), cfg, total, 64, 30*sim.Microsecond, 0)
			if err != nil {
				return Obs{}, false, fmt.Errorf("%s: %w", label, err)
			}
			until := outageFrom + outage
			recover := sim.Time(0)
			for _, at := range r.recvTimes {
				if at >= until {
					recover = at - until
					break
				}
			}
			pt := RecoveryPoint{
				Label: label, Outage: outage,
				Recover:     recover,
				Complete:    r.recvTimes[len(r.recvTimes)-1],
				Retransmits: r.tx.Retransmits, Timeouts: r.tx.Timeouts,
			}
			return Obs{Recov: []RecoveryPoint{pt}}, false, nil
		}})
	}
	return cells, nil
}

// faultSearchWorld builds one disposable loopback world for the
// bounded search: sender and receiver share ONE node (so a single
// proc.Runner owns every scheduling decision) and the channel runs over
// the node's own fabric port — kernel.MapRemote accepts node == self.
// The cluster is returned alongside the world so callers with their own
// driving loop (FaultReplay's traced straight-line run) can enable
// tracing and run it directly.
func faultSearchWorld(seed uint64, total int) (*net.Cluster, *proc.World, error) {
	method := userdma.ExtShadow{}
	cluster, err := net.NewCluster(1, userdma.ConfigFor(method), net.Gigabit())
	if err != nil {
		return nil, nil, err
	}
	cluster.Fabric.SetFaultPlane(fault.New(FaultPlanForSeed(seed), seed))
	n0 := cluster.Nodes[0]

	var tx *msg.RSender
	var rx *msg.RReceiver
	var got [][]byte
	sender := n0.NewProcess("tx", func(c *proc.Context) error {
		buf := make([]byte, 32)
		for i := 0; i < total; i++ {
			fmsg(i, buf)
			if err := tx.Send(c, buf); err != nil {
				return err
			}
		}
		return tx.Flush(c)
	})
	recver := n0.NewProcess("rx", func(c *proc.Context) error {
		buf := make([]byte, 32)
		for i := 0; i < total; i++ {
			n, err := rx.Recv(c, buf)
			if err != nil {
				return err
			}
			got = append(got, append([]byte(nil), buf[:n]...))
		}
		return rx.Linger(c, 2*sim.Millisecond)
	})
	h, err := method.Attach(n0, sender)
	if err != nil {
		return nil, nil, err
	}
	tx, rx, err = msg.NewReliableChannel(n0, sender, h, n0, recver, 0, msg.ReliableConfig{
		Config:        msg.Config{Slots: 2, SlotPayload: 32},
		RTO:           200 * sim.Microsecond,
		MaxRetries:    8,
		RecreditAfter: 500 * sim.Microsecond,
		GiveUp:        20 * sim.Millisecond,
	})
	if err != nil {
		return nil, nil, err
	}
	check := func() error {
		if err := sender.Err(); err != nil {
			return fmt.Errorf("sender: %w", err)
		}
		if err := recver.Err(); err != nil {
			return fmt.Errorf("receiver: %w", err)
		}
		if len(got) != total {
			return fmt.Errorf("delivered %d of %d messages", len(got), total)
		}
		want := make([]byte, 32)
		for i, g := range got {
			fmsg(i, want)
			if string(g) != string(want) {
				return fmt.Errorf("message %d out of order or duplicated", i)
			}
		}
		return nil
	}
	// Small-quantum finish: the endpoints poll each other, so the
	// default run-to-block policy would starve whichever process the
	// last explicit decision left off-CPU.
	return cluster, &proc.World{Runner: n0.Runner, Check: check, Finish: proc.NewRoundRobin(8)}, nil
}

// faultSearchFactory adapts faultSearchWorld to the explorer's factory
// shape (the cluster stays internal to the world's closures).
func faultSearchFactory(seed uint64, total int) proc.WorldFactory {
	return func() (*proc.World, error) {
		_, w, err := faultSearchWorld(seed, total)
		return w, err
	}
}

func faultSearchCells(p Params) ([]Cell, error) {
	seeds := p.Seeds
	if seeds <= 0 {
		seeds = 4
	}
	depth := p.Slots
	if depth <= 0 {
		depth = 4
	}
	const total = 3
	cells := make([]Cell, seeds)
	for i := range cells {
		seed := uint64(i + 1)
		cells[i] = Cell{Seed: seed, Config: fmt.Sprintf("seed=%d", seed), Run: func() (Obs, bool, error) {
			res, err := proc.Explore(faultSearchFactory(seed, total), depth, 10_000)
			if err != nil {
				return Obs{}, false, fmt.Errorf("seed %d: %w", seed, err)
			}
			pt := FaultSearchPoint{
				Label: fmt.Sprintf("seed=%d", seed), Seed: seed, Schedules: res.Schedules,
			}
			if res.Counterexample != nil {
				pt.Violation = fmt.Sprintf("schedule %v: %v (replay: seed=%d plan=%+v)",
					res.Counterexample, res.CounterexampleErr, seed, FaultPlanForSeed(seed).Default)
				// A violation is a protocol bug: stop the sweep at the
				// lowest-indexed seed, like the attack searches.
				return Obs{Search: []FaultSearchPoint{pt}}, true, nil
			}
			return Obs{Search: []FaultSearchPoint{pt}}, false, nil
		}}
	}
	return cells, nil
}

// --- renderers ---

func faultSweepText(r *Result, p Params) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Reliable channel under loss — 2 nodes, Gigabit link, %d messages per cell\n\n", faultMsgs(p))
	tb := stats.NewTable("scenario", "p50", "p99", "mean", "goodput", "rexmit", "recredit", "dropped")
	for _, pt := range r.FaultPoints() {
		tb.AddRow(pt.Label, pt.P50, pt.P99, pt.Mean,
			fmt.Sprintf("%.1f MB/s", pt.GoodputMBps), pt.Retransmits, pt.Recredits, pt.Dropped)
	}
	b.WriteString(tb.String())
	b.WriteByte('\n')
	b.WriteString("drop=0.00 rows are the control: a zero-fault plane is inert, so they match a bare fabric.\n")
	b.WriteString("All recovery traffic is user-level remote writes — zero kernel crossings at any drop rate.\n")
	return b.String()
}

func faultSweepMarkdown(r *Result, p Params) string {
	var b strings.Builder
	b.WriteString("\n## Fault sweep — reliable channel vs drop rate × size\n\n")
	b.WriteString("| scenario | p50 | p99 | mean | goodput MB/s | rexmit | recredit | dropped |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|\n")
	for _, pt := range r.FaultPoints() {
		fmt.Fprintf(&b, "| %s | %v | %v | %v | %.1f | %d | %d | %d |\n",
			pt.Label, pt.P50, pt.P99, pt.Mean, pt.GoodputMBps, pt.Retransmits, pt.Recredits, pt.Dropped)
	}
	return b.String()
}

func recoveryText(r *Result, p Params) string {
	var b strings.Builder
	b.WriteString("Link-down recovery — paced reliable stream across an outage window\n\n")
	tb := stats.NewTable("outage", "recover", "complete", "rexmit", "timeouts")
	for _, pt := range r.RecoveryPoints() {
		tb.AddRow(pt.Label, pt.Recover, pt.Complete, pt.Retransmits, pt.Timeouts)
	}
	b.WriteString(tb.String())
	b.WriteByte('\n')
	b.WriteString("recover = link heals -> first delivery; bounded by the retransmit backoff, never a kernel.\n")
	return b.String()
}

func recoveryMarkdown(r *Result, p Params) string {
	var b strings.Builder
	b.WriteString("\n## Recovery — time to resume after a link-down window\n\n")
	b.WriteString("| outage | recover | complete | rexmit | timeouts |\n")
	b.WriteString("|---|---|---|---|---|\n")
	for _, pt := range r.RecoveryPoints() {
		fmt.Fprintf(&b, "| %s | %v | %v | %d | %d |\n",
			pt.Label, pt.Recover, pt.Complete, pt.Retransmits, pt.Timeouts)
	}
	return b.String()
}

func faultSearchText(r *Result, p Params) string {
	var b strings.Builder
	b.WriteString("Bounded interleaving × fault-plan search — exactly-once, in-order delivery\n\n")
	total := 0
	for _, pt := range r.SearchPoints() {
		total += pt.Schedules
		if pt.Violation != "" {
			fmt.Fprintf(&b, "  %s: VIOLATION after %d schedules — %s\n", pt.Label, pt.Schedules, pt.Violation)
		} else {
			fmt.Fprintf(&b, "  %s: %d schedules, no violation\n", pt.Label, pt.Schedules)
		}
	}
	if r.Stopped == nil {
		fmt.Fprintf(&b, "\n%d schedules model-checked; the reliable protocol delivered exactly-once, in order, in every one.\n", total)
	} else {
		b.WriteString("\nThe sweep stopped at the first violating seed (grid order) — replay it with the printed line.\n")
	}
	return b.String()
}

func faultSearchMarkdown(r *Result, p Params) string {
	var b strings.Builder
	b.WriteString("\n## Fault search — model-checked delivery guarantee\n\n")
	b.WriteString("| seed | schedules | verdict |\n|---|---|---|\n")
	for _, pt := range r.SearchPoints() {
		verdict := "exactly-once, in order"
		if pt.Violation != "" {
			verdict = pt.Violation
		}
		fmt.Fprintf(&b, "| %d | %d | %s |\n", pt.Seed, pt.Schedules, verdict)
	}
	return b.String()
}
