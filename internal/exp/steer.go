package exp

// The steered experiment driver: an adaptive loop alongside the
// exhaustive grid runner.
//
// Run expands a FIXED grid and executes every cell; RunSteered asks a
// policy to PROPOSE cells round by round, so a search can bisect a
// monotone frontier, zoom where a watched metric inflects, or abort
// cells that live data already shows dominated — probing strictly
// fewer cells than the grid it replaces while landing on the same
// answer (the steerparity CI target pins both halves of that claim).
//
// The determinism contract is the same one Run has, lifted to rounds:
//
//   - The policy is called BETWEEN rounds only, and only ever sees the
//     merged, batch-ordered history of completed probes — never
//     wall-clock completion order. Batches run on the internal/par
//     pool, but their results merge by batch index, so the policy's
//     inputs (and therefore its proposals) are identical at any
//     -procs value.
//   - Cells carry their seeds; the same (policy, Params) always
//     replays the same probe sequence byte for byte.
//   - Errors surface in batch order: the lowest-indexed failing cell
//     of the failing round wins, exactly as a serial loop would
//     report.
//
// Every choice the policy makes is recorded in a DecisionLog — which
// cells were probed, split, aborted, accepted, and why — and mirrored
// onto an obs trace spine (CatSteer) when one is attached, so Perfetto
// export shows the search itself next to the worlds it probed.

import (
	"fmt"
	"strings"

	"uldma/internal/obs"
	"uldma/internal/par"
	"uldma/internal/sim"
)

// Action classifies one steering decision.
type Action string

const (
	// ActProbe schedules a cell for measurement.
	ActProbe Action = "probe"
	// ActSplit inserts a new cell between measured ones (grid zoom).
	ActSplit Action = "split"
	// ActAbort drops cells the policy will not measure (dominated).
	ActAbort Action = "abort"
	// ActAccept records a search's verdict.
	ActAccept Action = "accept"
)

// Decision is one entry of the steering trace: what the policy did to
// which cell, in which round, and why.
type Decision struct {
	Round int
	Act   Action
	Cell  string // the affected cell's grid label
	Why   string
}

// DecisionLog accumulates a steered run's decisions in the order they
// were made. When a trace spine is attached, every decision is also
// emitted as a CatSteer instant on a synthetic timeline (one
// microsecond per decision — the decisions happen between simulated
// worlds, so they carry their own clock), which is what Perfetto
// export renders as the search track.
type DecisionLog struct {
	decisions []Decision
	trace     *obs.Trace
	at        sim.Time
}

// NewDecisionLog creates a log, mirroring to tr when non-nil.
func NewDecisionLog(tr *obs.Trace) *DecisionLog {
	return &DecisionLog{trace: tr}
}

// Add records one decision. This is a cold path (a handful of entries
// per search), so the mirrored event's name may be formatted.
func (l *DecisionLog) Add(round int, act Action, cell, why string) {
	l.decisions = append(l.decisions, Decision{Round: round, Act: act, Cell: cell, Why: why})
	if l.trace != nil {
		l.at += sim.Microsecond
		l.trace.Instant(l.at, obs.CatSteer, string(act)+" "+cell, 0, -1,
			uint64(round), uint64(len(l.decisions)), 0)
	}
}

// Decisions returns the recorded decisions in order.
func (l *DecisionLog) Decisions() []Decision { return l.decisions }

// count tallies the decisions matching act.
func (l *DecisionLog) count(act Action) int {
	n := 0
	for _, d := range l.decisions {
		if d.Act == act {
			n++
		}
	}
	return n
}

// Render formats the log as the indented decision listing the tools
// print under a steered section.
func (l *DecisionLog) Render() string {
	var b strings.Builder
	for _, d := range l.decisions {
		fmt.Fprintf(&b, "  r%-2d %-6s %-34s %s\n", d.Round, d.Act, d.Cell, d.Why)
	}
	return b.String()
}

// SteerPolicy drives one steered search. Next proposes the cells for
// round r, given the merged batch-ordered history of every completed
// probe so far; an empty batch ends the search. Policies are stateful
// and single-use: one instance drives one RunSteered call.
type SteerPolicy interface {
	Next(r int, history []CellResult, log *DecisionLog) ([]Cell, error)
}

// Steered is a declarative steered search: a name, the size of the
// exhaustive grid the search replaces (what "strictly fewer cells" is
// measured against), and the adaptive policy.
type Steered struct {
	Name      string
	GridCells int
	Policy    SteerPolicy
}

// SteerResult is a steered run's outcome: every probe in batch order,
// round count, and the full decision log.
type SteerResult struct {
	Name      string
	GridCells int
	Probes    []CellResult // all completed probes, round- then batch-ordered
	Rounds    int
	Log       *DecisionLog
}

// Probed reports how many cells the search measured.
func (r *SteerResult) Probed() int { return len(r.Probes) }

// RunSteered executes the steered search under p, mirroring decisions
// onto tr when non-nil. Each proposed batch fans out on p.Procs
// workers; results merge by batch index before the policy sees them,
// which is what keeps steered output byte-identical at any worker
// count (TestSteerWorkerParity).
func RunSteered(s *Steered, p Params, tr *obs.Trace) (*SteerResult, error) {
	log := NewDecisionLog(tr)
	res := &SteerResult{Name: s.Name, GridCells: s.GridCells, Log: log}
	type slot struct {
		obs  Obs
		stop bool
		err  error
	}
	for round := 0; ; round++ {
		batch, err := s.Policy.Next(round, res.Probes, log)
		if err != nil {
			return nil, fmt.Errorf("%s round %d: %w", s.Name, round, err)
		}
		if len(batch) == 0 {
			res.Rounds = round
			return res, nil
		}
		slots := make([]slot, len(batch))
		_ = par.Do(len(batch), p.Procs, func(i int) error {
			obs, stop, err := batch[i].Run()
			slots[i] = slot{obs: obs, stop: stop, err: err}
			if err != nil || stop {
				return errCellStop
			}
			return nil
		})
		for i := range batch {
			if slots[i].err != nil {
				return nil, fmt.Errorf("%s round %d cell %d: %w", s.Name, round, i, slots[i].err)
			}
			res.Probes = append(res.Probes, CellResult{Cell: batch[i], Obs: slots[i].obs})
		}
	}
}
