package exp

// The lmbench-style OS-latency suite behind cmd/oslat, as an
// experiment: three independent worlds (syscall costs, context-switch
// cost, PAL/uncached/TLB microcosts) that fan out on the shared runner
// and fold into one ordered microbenchmark table. It validates the
// §2.2 premise ("the overhead of an empty system call ... ranges
// between 1,000 and 5,000 processor cycles") on the model.

import (
	"fmt"
	"strings"

	"uldma/internal/dma"
	"uldma/internal/kernel"
	"uldma/internal/machine"
	"uldma/internal/phys"
	"uldma/internal/proc"
	"uldma/internal/sim"
	"uldma/internal/stats"
	"uldma/internal/vm"
)

func init() {
	Register(&Experiment{
		Name:  "oslat",
		Doc:   "lmbench-style OS microbenchmarks: syscalls, context switch, PAL, uncached, TLB",
		Cells: oslatCells,
		Render: map[Format]RenderFunc{
			Text: oslatText,
		},
	})
}

func oslatCells(p Params) ([]Cell, error) {
	iters := p.Iters
	return []Cell{
		{Config: "syscalls", Run: func() (Obs, bool, error) { return oslatSyscalls(iters) }},
		{Config: "context switch", Run: func() (Obs, bool, error) { return oslatSwitch(iters) }},
		{Config: "micro", Run: func() (Obs, bool, error) { return oslatMicro(iters) }},
	}, nil
}

// oslatSyscalls measures null-syscall latency and the kernel DMA path
// broken into its Figure 1 components.
func oslatSyscalls(iters int) (Obs, bool, error) {
	cfg := machine.Alpha3000TC(dma.ModePaired, 0)
	m, err := machine.New(cfg)
	if err != nil {
		return Obs{}, false, err
	}
	var nullSample, dmaSample stats.Sample
	p := m.NewProcess("lmbench", func(c *proc.Context) error {
		for i := 0; i < iters; i++ {
			start := m.Clock.Now()
			if _, err := c.Syscall(kernel.SysNull); err != nil {
				return err
			}
			nullSample.Add(m.Clock.Now() - start)
		}
		for i := 0; i < iters; i++ {
			start := m.Clock.Now()
			if _, err := c.Syscall(kernel.SysDMA, 0x10000, 0x20000, 64); err != nil {
				return err
			}
			dmaSample.Add(m.Clock.Now() - start)
		}
		return nil
	})
	m.Kernel.AllocPage(p.AddressSpace(), 0x10000, vm.Read|vm.Write)
	m.Kernel.AllocPage(p.AddressSpace(), 0x20000, vm.Read|vm.Write)
	if err := m.Run(proc.NewRoundRobin(1<<20), 1<<30); err != nil {
		return Obs{}, false, err
	}
	if p.Err() != nil {
		return Obs{}, false, p.Err()
	}
	return Obs{Rows: []Row{
		{Name: "null syscall", Mean: nullSample.Mean()},
		{Name: "DMA syscall (Figure 1)", Mean: dmaSample.Mean()},
	}}, false, nil
}

// oslatSwitch measures context-switch cost: two ping-ponging processes
// under quantum 1.
func oslatSwitch(iters int) (Obs, bool, error) {
	cfg := machine.Alpha3000TC(dma.ModePaired, 0)
	m2 := machine.MustNew(cfg)
	for i := 0; i < 2; i++ {
		m2.NewProcess("switcher", func(c *proc.Context) error {
			for k := 0; k < iters/10; k++ {
				c.Spin(1)
			}
			return nil
		})
	}
	if err := m2.Run(proc.NewRoundRobin(1), 1<<30); err != nil {
		return Obs{}, false, err
	}
	switchMean := sim.Time(0)
	if s := m2.Runner.Stats(); s.Switches > 0 {
		switchMean = s.SwitchTime / sim.Time(s.Switches)
	}
	return Obs{Rows: []Row{{Name: "context switch", Mean: switchMean}}}, false, nil
}

// oslatMicro measures PAL dispatch, uncached device access, and the
// TLB-miss penalty on a third world.
func oslatMicro(iters int) (Obs, bool, error) {
	cfg := machine.Alpha3000TC(dma.ModePaired, 0)
	m3 := machine.MustNew(cfg)
	m3.Kernel.InstallPALDMA()
	var palSample, uncachedSample, tlbMissPenalty stats.Sample
	p3 := m3.NewProcess("micro", func(c *proc.Context) error {
		// PAL call (includes its two uncached accesses).
		for i := 0; i < iters/10; i++ {
			start := m3.Clock.Now()
			if _, err := c.PALCall(kernel.PALUserDMA, 0x10000, 0x20000, 0); err != nil {
				return err
			}
			palSample.Add(m3.Clock.Now() - start)
		}
		// Single uncached load (engine control-status via shadow poll is
		// method-specific; use a shadow status read path: a store+load
		// pair minus the posted store is just the load).
		for i := 0; i < iters/10; i++ {
			start := m3.Clock.Now()
			if _, err := c.Load(kernel.ShadowVA(0x10000), phys.Size64); err != nil {
				return err
			}
			uncachedSample.Add(m3.Clock.Now() - start)
		}
		// TLB miss penalty: first touch of a fresh page vs a warm one.
		for i := 0; i < 16; i++ {
			va := vm.VAddr(0x40000 + uint64(i)*m3.Cfg.PageSize)
			start := m3.Clock.Now()
			if _, err := c.Load(va, phys.Size64); err != nil {
				return err
			}
			cold := m3.Clock.Now() - start
			start = m3.Clock.Now()
			if _, err := c.Load(va, phys.Size64); err != nil {
				return err
			}
			warm := m3.Clock.Now() - start
			tlbMissPenalty.Add(cold - warm)
		}
		return nil
	})
	m3.Kernel.AllocPage(p3.AddressSpace(), 0x10000, vm.Read|vm.Write)
	m3.Kernel.AllocPage(p3.AddressSpace(), 0x20000, vm.Read|vm.Write)
	m3.Kernel.MapShadow(p3, 0x10000)
	m3.Kernel.MapShadow(p3, 0x20000)
	for i := 0; i < 16; i++ {
		m3.Kernel.AllocPage(p3.AddressSpace(), vm.VAddr(0x40000+uint64(i)*m3.Cfg.PageSize), vm.Read)
	}
	if err := m3.Run(proc.NewRoundRobin(1<<20), 1<<62); err != nil {
		return Obs{}, false, err
	}
	if p3.Err() != nil {
		return Obs{}, false, p3.Err()
	}
	return Obs{Rows: []Row{
		{Name: "PAL user_level_dma call", Mean: palSample.Mean()},
		{Name: "uncached device load", Mean: uncachedSample.Mean()},
		{Name: "TLB miss penalty", Mean: tlbMissPenalty.Mean()},
	}}, false, nil
}

// OSLatCycles returns the null-syscall cost of an oslat result in CPU
// cycles — the number the §2.2 lmbench band check (1,000–5,000) is
// about.
func OSLatCycles(r *Result) int64 {
	rows := r.Rows()
	if len(rows) == 0 {
		return 0
	}
	return machine.Alpha3000TC(dma.ModePaired, 0).CPU.Freq.CyclesIn(rows[0].Mean)
}

// OSLatInBand reports whether the null-syscall cost sits in the
// paper's §2.2 band.
func OSLatInBand(r *Result) bool {
	cycles := OSLatCycles(r)
	return cycles >= 1000 && cycles <= 5000
}

func oslatText(r *Result, p Params) string {
	cfg := machine.Alpha3000TC(dma.ModePaired, 0)
	cpuFreq := cfg.CPU.Freq
	var b strings.Builder
	fmt.Fprintf(&b, "OS latency microbenchmarks — %s (%d iterations)\n\n", cfg.Name, p.Iters)
	rows := r.Rows()
	tb := stats.NewTable("microbenchmark", "mean", "CPU cycles")
	for _, row := range rows {
		tb.AddRow(row.Name, row.Mean, cpuFreq.CyclesIn(row.Mean))
	}
	b.WriteString(tb.String())
	b.WriteByte('\n')
	cycles := OSLatCycles(r)
	fmt.Fprintf(&b, "paper §2.2: empty syscall should cost 1,000-5,000 cycles — measured %d: ", cycles)
	if OSLatInBand(r) {
		b.WriteString("WITHIN BAND\n")
	} else {
		b.WriteString("OUT OF BAND\n")
		return b.String()
	}
	fmt.Fprintf(&b, "kernel DMA = null syscall + %v of translation, checks and device programming\n",
		rows[1].Mean-rows[0].Mean)
	return b.String()
}
