package exp

// The `scalemachine` experiment: the scale workload re-run with a FULL
// machine.Machine per cluster node instead of the flat Table-1-cost
// model. Every RPC pays the selected protocol's real initiation
// sequence — shadow stores through the TLB and write buffer, kernel
// traps, engine acceptance — on the node's own CPU, and every request
// and response moves through the node's actual DMA engine (payload
// snapshotted at acceptance, shipped at the engine's computed End) into
// the sharded fabric. The method axis of the two-node clustersim
// comparison becomes a cluster-scale axis: per-protocol goodput and
// latency percentiles at 128-1000 nodes.
//
// World construction amortizes through a pristine-snapshot template
// pool: ONE standalone machine per (protocol, cluster size) is built,
// attached, mapped (a remote req/resp window per peer) and snapshotted;
// every node is then hydrated with machine.NewFromSnapshotHosted onto
// its shard's clock and queue, sharing the template's memory
// copy-on-write and its page tables by pointer. A 1000-node world costs
// one template build plus 1000 cheap hydrations.
//
// Time discipline: machines on the same shard share the shard clock, so
// each machine floors the clock to its own high-water mark before
// executing and records where it left it (net.HostedMachines
// Floor/Leave), and serializes behind its engine's last transfer End
// (Bump). Clones carry template-era substrate timestamps, so all
// arrivals are primed after the template's snapshot time ("boot").
// Everything reported is layout-invariant: byte-identical output at
// every shard and worker count (TestScaleMachineShardParity), same as
// the flat scale experiment.

import (
	"encoding/binary"
	"fmt"
	"strings"
	"sync"

	userdma "uldma/internal/core"
	"uldma/internal/dma"
	"uldma/internal/machine"
	"uldma/internal/net"
	"uldma/internal/par"
	"uldma/internal/phys"
	"uldma/internal/proc"
	"uldma/internal/sim"
	"uldma/internal/stats"
	"uldma/internal/vm"
)

func init() {
	Register(&Experiment{
		Name:  "scalemachine",
		Doc:   "machines at cluster scale: per-protocol RPC traffic through real per-node DMA engines",
		Cells: scaleMachineCells,
		Render: map[Format]RenderFunc{
			Text: scaleMachineText,
		},
	})
}

const (
	// scaleMNodeShift narrows each node's remote window to 16 KiB (two
	// 8 KiB pages: request landing + response landing), which stretches
	// the 32 MiB remote address space to 2048 nodes.
	scaleMNodeShift = 14
	// scaleMMaxNodes = remote window size >> scaleMNodeShift.
	scaleMMaxNodes = 2048
	// scaleMRespBytes is the completion write the server returns.
	scaleMRespBytes = 16
	// scaleMSrvCycles is the server-side request-validation spin (CPU
	// cycles) charged before the response initiation.
	scaleMSrvCycles = 300
	// scaleMRackSize groups nodes into racks for the latency matrix;
	// cross-rack wires are scaleMRackCross times the base link latency.
	scaleMRackSize  = 32
	scaleMRackCross = 3
	// scaleMPage is the Alpha page size the address map below is built
	// on; the template build asserts the preset agrees.
	scaleMPage = 8192
)

// Template address map (one process per node, cloned from the
// template, so every node sees the same layout).
const (
	// scaleMReqVA/scaleMRespVA are the node's OWN payload pages: the
	// client writes its request tag into reqVA's frame, the server its
	// response tag into respVA's frame, and DMAs read from them.
	scaleMReqVA  = vm.VAddr(0x0010_0000)
	scaleMRespVA = scaleMReqVA + scaleMPage
	// scaleMLandReqVA/scaleMLandRespVA are read-only views of the two
	// landing pages (physical 0 and scaleMPage — below the kernel's
	// frame allocator, so otherwise unused). Incoming payloads land
	// there; the CPU validates them with real loads.
	scaleMLandReqVA  = vm.VAddr(0x0020_0000)
	scaleMLandRespVA = scaleMLandReqVA + scaleMPage
	// scaleMPeerBase starts the per-peer remote windows: peer d's
	// request page maps at scaleMPeerVA(d), its response page one page
	// further, 16 KiB stride.
	scaleMPeerBase = vm.VAddr(0x0400_0000)

	// Landing offsets inside a node's remote window: the fabric address
	// is also the destination physical address, mirroring net.Fabric.
	scaleMReqOff  = phys.Addr(0)
	scaleMRespOff = phys.Addr(scaleMPage)
)

// scaleMPeerVA returns the VA of peer d's remote request page; +8192 is
// its response page.
func scaleMPeerVA(d int) vm.VAddr {
	return scaleMPeerBase + vm.VAddr(d)<<scaleMNodeShift
}

// ScaleMachinePoint is one scalemachine run's complete observation: the
// flat scale metrics plus the machine-world extras.
type ScaleMachinePoint struct {
	ScalePoint
	Protocol string
	// Boot is the template's snapshot time: arrivals start after it,
	// and goodput is computed over Finish - Boot.
	Boot sim.Time
	// Lookahead/LatMin/LatMax describe the rack latency matrix the
	// synchronizer ran under.
	Lookahead sim.Time
	LatMin    sim.Time
	LatMax    sim.Time
	// Engine totals summed over every node's real DMA engine.
	EngStarted    uint64
	EngRejected   uint64
	EngCompleted  uint64
	EngBytesMoved uint64
	// MachineDigest folds every node's engine counters and CPU
	// high-water mark in node order — the machine-level analogue of the
	// fabric Fingerprint, pinned by the parity tests.
	MachineDigest uint64
}

// scaleMTemplate is one pooled pristine world: a standalone machine
// built, attached and mapped for a (protocol, cluster size) pair, plus
// the precomputed pieces every clone shares.
type scaleMTemplate struct {
	snap   *machine.Snapshot
	h      *userdma.Handle
	p      *proc.Process
	boot   sim.Time  // snapshot time; clones must not run before it
	reqPA  phys.Addr // client request payload frame
	respPA phys.Addr // server response payload frame
}

var (
	scaleMMu    sync.Mutex
	scaleMCache = map[string]*scaleMTemplate{}
)

// scaleMTemplateFor builds (or returns the pooled) template for method
// at the given cluster size. Safe for concurrent cells: the build is
// serialized, and hydration from the returned snapshot is read-only.
func scaleMTemplateFor(method userdma.Method, nodes int) (*scaleMTemplate, error) {
	key := fmt.Sprintf("%s/%d", method.Name(), nodes)
	scaleMMu.Lock()
	defer scaleMMu.Unlock()
	if t, ok := scaleMCache[key]; ok {
		return t, nil
	}
	cfg := userdma.ConfigFor(method)
	cfg.Engine.NodeShift = scaleMNodeShift
	if cfg.PageSize != scaleMPage {
		return nil, fmt.Errorf("exp: scalemachine address map assumes %d-byte pages, preset has %d", scaleMPage, cfg.PageSize)
	}
	m, err := machine.New(cfg)
	if err != nil {
		return nil, err
	}
	// The library process: its body is empty (RPC events drive the CPU
	// directly through userdma.DirectCPU), but running it to completion
	// leaves a settled record the snapshot can carry, and its address
	// space holds every mapping below.
	p := m.NewProcess("rpc", func(c *proc.Context) error { return nil })
	if err := m.Run(proc.NewRoundRobin(1<<20), 1<<30); err != nil {
		return nil, err
	}
	if p.Err() != nil {
		return nil, p.Err()
	}
	// Attach first: context-carrying protocols burn their context id
	// into the shadow mappings created below.
	h, err := method.Attach(m, p)
	if err != nil {
		return nil, err
	}
	frames, err := m.SetupPages(p, scaleMReqVA, 2, vm.Read|vm.Write)
	if err != nil {
		return nil, err
	}
	m.Mem.Fill(frames[0], scaleMPage, 0xab)
	m.Mem.Fill(frames[1], scaleMPage, 0xcd)
	// Local read-only views of the landing pages.
	if err := m.Kernel.MapFrame(p.AddressSpace(), scaleMLandReqVA, scaleMReqOff, vm.Read); err != nil {
		return nil, err
	}
	if err := m.Kernel.MapFrame(p.AddressSpace(), scaleMLandRespVA, scaleMRespOff, vm.Read); err != nil {
		return nil, err
	}
	// One remote req/resp window per peer (self included, for a uniform
	// map), each with its shadow alias for the user-level sequences.
	for d := 0; d < nodes; d++ {
		va := scaleMPeerVA(d)
		if err := m.Kernel.MapRemote(p, va, d, scaleMReqOff); err != nil {
			return nil, err
		}
		if err := m.Kernel.MapShadow(p, va); err != nil {
			return nil, err
		}
		if err := m.Kernel.MapRemote(p, va+scaleMPage, d, scaleMRespOff); err != nil {
			return nil, err
		}
		if err := m.Kernel.MapShadow(p, va+scaleMPage); err != nil {
			return nil, err
		}
	}
	snap, err := m.Snapshot()
	if err != nil {
		return nil, err
	}
	t := &scaleMTemplate{snap: snap, h: h, p: p, boot: snap.Time(), reqPA: frames[0], respPA: frames[1]}
	scaleMCache[key] = t
	return t, nil
}

// scaleMWorld is the hosted-machine traffic model. Per-node slices
// follow the node-local rule; err latches the first event-side failure
// (checked after Run — event handlers cannot return errors).
type scaleMWorld struct {
	c     *net.ShardedCluster
	hm    *net.HostedMachines
	h     *userdma.Handle
	p     *proc.Process
	nodes int

	protocol string
	arrival  int
	tenants  int
	dur      sim.Time

	interval sim.Time
	end      sim.Time // arrival window close (boot + dur)
	boot     sim.Time
	bytes    uint64
	reqPA    phys.Addr
	respPA   phys.Addr

	issueAt   [][]sim.Time
	lats      [][]sim.Time
	issued    []uint64
	completed []uint64
	err       error
}

func (w *scaleMWorld) fail(err error) {
	if w.err == nil {
		w.err = err
	}
}

// scaleMPort is one node's fabric attachment: the engine's remote ships
// become cluster messages. The landing offset classifies the message
// and the payload's first eight bytes carry the RPC tag — the tag rides
// the actual DMA payload through the engine's acceptance-time snapshot.
type scaleMPort struct {
	w    *scaleMWorld
	node int
}

// Deliver implements dma.RemoteHandler. data is not retained.
func (pt *scaleMPort) Deliver(node int, addr phys.Addr, data []byte, at sim.Time) error {
	var kind uint8
	switch addr {
	case scaleMReqOff:
		kind = scaleKindReq
	case scaleMRespOff:
		kind = scaleKindResp
	default:
		return fmt.Errorf("exp: scalemachine ship to unknown landing offset %v", addr)
	}
	if len(data) < 8 {
		return fmt.Errorf("exp: scalemachine ship of %d bytes cannot carry the RPC tag", len(data))
	}
	pt.w.c.Send(pt.node, node, kind, uint64(len(data)), binary.LittleEndian.Uint64(data[:8]), at)
	return nil
}

// scaleMachineParams resolves the shared scale knobs, then applies the
// machine world's own bounds.
func scaleMachineParams(p Params) (nodes, shards, arrival, tenants int, bytes uint64, dur sim.Time, seed uint64, err error) {
	nodes, shards, arrival, tenants, bytes, dur, seed, err = scaleParams(p)
	if err != nil {
		return
	}
	switch {
	case nodes > scaleMMaxNodes:
		err = fmt.Errorf("exp: scalemachine supports at most %d nodes (16 KiB remote window per node), got %d", scaleMMaxNodes, nodes)
	case bytes < 8:
		err = fmt.Errorf("exp: scalemachine requests must carry the 8-byte RPC tag, got %d bytes", bytes)
	case bytes > scaleMPage:
		err = fmt.Errorf("exp: scalemachine requests must fit one %d-byte page, got %d bytes", scaleMPage, bytes)
	}
	return
}

// scaleMMethod resolves a protocol name to its method. Names are the
// short forms the clustersim -protocol flag takes.
func scaleMMethod(name string) (userdma.Method, error) {
	switch name {
	case "kernel":
		return userdma.KernelLevel{}, nil
	case "extshadow":
		return userdma.ExtShadow{}, nil
	case "keybased":
		return userdma.KeyBased{}, nil
	case "repeated":
		return userdma.RepeatedPassing{Len: 5, Barriers: true}, nil
	}
	return nil, fmt.Errorf("exp: unknown protocol %q (kernel, extshadow, keybased, repeated, all)", name)
}

// scaleMShort maps a method back to its -protocol flag spelling — the
// stable identifier the point, the JSON rows and the bench labels all
// carry (display names have spaces and punctuation).
func scaleMShort(m userdma.Method) string {
	switch m.(type) {
	case userdma.KernelLevel:
		return "kernel"
	case userdma.ExtShadow:
		return "extshadow"
	case userdma.KeyBased:
		return "keybased"
	case userdma.RepeatedPassing:
		return "repeated"
	}
	return m.Name()
}

// ValidProtocol rejects -protocol flag values the scalemachine
// experiment would refuse ("" and "all" select the full line-up) —
// the tools call it for flag-level exit-2 messages before any world
// is built.
func ValidProtocol(name string) error {
	_, err := scaleMProtocols(name)
	return err
}

// ValidScaleMachineWorld applies the machine world's extra flag-level
// bounds — the node ceiling imposed by the 16 KiB per-node remote
// window and the request-size band (must carry the 8-byte RPC tag,
// must fit one landing page) — so the tools can exit 2 before any
// template is built. scaleMachineParams re-checks underneath.
func ValidScaleMachineWorld(nodes int, bytes uint64) error {
	switch {
	case nodes > scaleMMaxNodes:
		return fmt.Errorf("the machine world supports at most %d nodes (16 KiB remote window per node)", scaleMMaxNodes)
	case bytes < 8:
		return fmt.Errorf("machine-world requests must carry the 8-byte RPC tag")
	case bytes > scaleMPage:
		return fmt.Errorf("machine-world requests must fit one %d-byte landing page", scaleMPage)
	}
	return nil
}

// scaleMProtocols expands a protocol selector into the method list:
// ""/"all" is the NOW comparison line-up, anything else a single name.
func scaleMProtocols(name string) ([]userdma.Method, error) {
	if name == "" || name == "all" {
		return ClusterMethods(), nil
	}
	m, err := scaleMMethod(name)
	if err != nil {
		return nil, err
	}
	return []userdma.Method{m}, nil
}

// ScaleProtocolNames expands a -protocol selector into the short names
// it runs ("" / "all" → the full line-up) — what the tools iterate for
// per-protocol bench ladders.
func ScaleProtocolNames(selector string) ([]string, error) {
	ms, err := scaleMProtocols(selector)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(ms))
	for i, m := range ms {
		names[i] = scaleMShort(m)
	}
	return names, nil
}

// RunScaleMachineNamed resolves one protocol short name and runs its
// hosted-machine world — the tools' per-protocol entry point.
func RunScaleMachineNamed(protocol string, p Params, workers int) (ScaleMachinePoint, error) {
	method, err := scaleMMethod(protocol)
	if err != nil {
		return ScaleMachinePoint{}, err
	}
	return RunScaleMachine(method, p, workers)
}

// RunScaleMachine builds one hosted-machine world for the method under
// p and runs it with the given intra-world worker count. Like RunScale,
// the result is byte-identical at every shards/workers combination.
func RunScaleMachine(method userdma.Method, p Params, workers int) (ScaleMachinePoint, error) {
	w, err := newScaleMachineWorld(method, p)
	if err != nil {
		return ScaleMachinePoint{}, err
	}
	w.prime()
	return w.run(workers)
}

// newScaleMachineWorld assembles the full hosted fleet — template,
// clones, ports, state hook, deliver hook — but does not prime arrivals
// or run; the split is what lets the snapshot tests capture the
// quiescent pre-traffic world through the cluster's own machinery.
func newScaleMachineWorld(method userdma.Method, p Params) (*scaleMWorld, error) {
	nodes, shards, arrival, tenants, bytes, dur, seed, err := scaleMachineParams(p)
	if err != nil {
		return nil, err
	}
	tpl, err := scaleMTemplateFor(method, nodes)
	if err != nil {
		return nil, err
	}
	base := net.Gigabit()
	c, err := net.NewShardedCluster(net.ShardedConfig{
		Nodes:     nodes,
		Shards:    shards,
		Link:      base,
		Seed:      seed,
		QueueHint: 4 * nodes / shards,
		// Rack topology: racks of scaleMRackSize nodes, cross-rack
		// wires 3x the base latency. A pure function of the node ids,
		// so identical under every shard layout.
		Latency: func(src, dst int) sim.Time {
			if src/scaleMRackSize == dst/scaleMRackSize {
				return base.Latency
			}
			return scaleMRackCross * base.Latency
		},
	})
	if err != nil {
		return nil, err
	}
	fleet := make([]*machine.Machine, nodes)
	for n := range fleet {
		clock, events := c.NodeEnv(n)
		mm, err := machine.NewFromSnapshotHosted(tpl.snap, clock, events)
		if err != nil {
			return nil, fmt.Errorf("exp: scalemachine node %d: %w", n, err)
		}
		fleet[n] = mm
	}
	w := &scaleMWorld{
		c:        c,
		h:        tpl.h,
		p:        tpl.p,
		nodes:    nodes,
		protocol: scaleMShort(method),
		arrival:  arrival,
		tenants:  tenants,
		dur:      dur,
		// Per-tenant mean inter-arrival, integer picoseconds (same
		// arithmetic as the flat scale world).
		interval:  sim.Time(uint64(sim.Second) * uint64(tenants) / uint64(arrival)),
		boot:      tpl.boot,
		end:       tpl.boot + dur,
		bytes:     bytes,
		reqPA:     tpl.reqPA,
		respPA:    tpl.respPA,
		issueAt:   make([][]sim.Time, nodes),
		lats:      make([][]sim.Time, nodes),
		issued:    make([]uint64, nodes),
		completed: make([]uint64, nodes),
	}
	if w.interval <= 0 {
		return nil, fmt.Errorf("exp: scalemachine arrival rate %d/node too high for %d tenants (zero inter-arrival)", arrival, tenants)
	}
	for n, mm := range fleet {
		mm.Engine.SetRemoteHandler(&scaleMPort{w: w, node: n})
	}
	hm, err := net.NewHostedMachines(c, fleet)
	if err != nil {
		return nil, err
	}
	w.hm = hm
	// Chain the world's RPC bookkeeping behind the fleet snapshot: a
	// cluster Snapshot/Restore must rewind issue times and latency
	// samples with the machines, or a restored world double-counts.
	hm.Inner = w
	c.SetDeliver(w.deliver)
	return w, nil
}

// scaleMState is the world's own snapshot payload (chained through
// HostedMachines.Inner).
type scaleMState struct {
	issueAt   [][]sim.Time
	lats      [][]sim.Time
	issued    []uint64
	completed []uint64
	err       error
}

// SnapshotState implements net.ShardState.
func (w *scaleMWorld) SnapshotState() any {
	st := &scaleMState{
		issueAt:   make([][]sim.Time, w.nodes),
		lats:      make([][]sim.Time, w.nodes),
		issued:    append([]uint64(nil), w.issued...),
		completed: append([]uint64(nil), w.completed...),
		err:       w.err,
	}
	for n := 0; n < w.nodes; n++ {
		st.issueAt[n] = append([]sim.Time(nil), w.issueAt[n]...)
		st.lats[n] = append([]sim.Time(nil), w.lats[n]...)
	}
	return st
}

// RestoreState implements net.ShardState.
func (w *scaleMWorld) RestoreState(state any) error {
	st, ok := state.(*scaleMState)
	if !ok {
		return fmt.Errorf("exp: scalemachine world: foreign snapshot payload %T", state)
	}
	if len(st.issued) != w.nodes {
		return fmt.Errorf("exp: scalemachine world: snapshot of %d nodes onto %d", len(st.issued), w.nodes)
	}
	for n := 0; n < w.nodes; n++ {
		w.issueAt[n] = append(w.issueAt[n][:0], st.issueAt[n]...)
		w.lats[n] = append(w.lats[n][:0], st.lats[n]...)
	}
	copy(w.issued, st.issued)
	copy(w.completed, st.completed)
	w.err = st.err
	return nil
}

// prime schedules every tenant stream's first arrival past boot: clone
// substrates carry template-era timestamps, so no machine runs before
// the snapshot time. Draw order is fixed (node, tenant),
// layout-invariant.
func (w *scaleMWorld) prime() {
	for n := 0; n < w.nodes; n++ {
		for t := 0; t < w.tenants; t++ {
			w.scheduleArrival(n, w.jitter(n, w.boot))
		}
	}
}

// run drives the primed world to completion and folds the observation.
func (w *scaleMWorld) run(workers int) (ScaleMachinePoint, error) {
	if err := w.c.Run(par.Workers(workers), scaleMaxWindows); err != nil {
		return ScaleMachinePoint{}, err
	}
	if w.err != nil {
		return ScaleMachinePoint{}, w.err
	}
	return w.observe(), nil
}

func (w *scaleMWorld) jitter(n int, now sim.Time) sim.Time {
	return now + w.interval/2 + sim.Time(w.c.Rand(n).Uint64()%uint64(w.interval))
}

func (w *scaleMWorld) scheduleArrival(n int, at sim.Time) {
	w.c.At(n, at, func(now sim.Time) { w.arrive(n, now) })
}

// tag writes the RPC tag into the first word of a payload frame — the
// application-level "produce the message" step (free, like the flat
// model's payload; the DMA that moves it pays full price).
func (w *scaleMWorld) tag(m *machine.Machine, pa phys.Addr, seq uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], seq)
	return m.Mem.WriteBytes(pa, b[:])
}

// leaveEngine closes a machine-driving event: record the CPU high-water
// mark, then serialize the node behind its engine's last transfer End
// (the engine and payload buffers are a serial per-node resource).
func (w *scaleMWorld) leaveEngine(n int, m *machine.Machine) {
	w.hm.Leave(n)
	if t := m.Engine.LastTransfer(); t != nil {
		w.hm.Bump(n, t.End)
	}
}

// arrive is one RPC arrival on node n: keep the stream alive, pick a
// uniform remote peer, then run the protocol's REAL initiation sequence
// on the node's CPU. The engine ships the payload to the fabric at its
// computed End.
func (w *scaleMWorld) arrive(n int, now sim.Time) {
	rng := w.c.Rand(n)
	if next := w.jitter(n, now); next < w.end {
		w.scheduleArrival(n, next)
	}
	if w.err != nil {
		return
	}
	dst := rng.Intn(w.nodes - 1)
	if dst >= n {
		dst++ // uniform over the other nodes, never self
	}
	seq := uint64(len(w.issueAt[n]))
	w.issueAt[n] = append(w.issueAt[n], now)
	w.issued[n]++
	m := w.hm.Machine(n)
	w.hm.Floor(n, now)
	if err := w.tag(m, w.reqPA, seq); err != nil {
		w.fail(err)
		return
	}
	st, err := w.h.DirectDMA(&userdma.DirectCPU{M: m, P: w.p}, scaleMReqVA, scaleMPeerVA(dst), w.bytes)
	if err != nil {
		w.fail(fmt.Errorf("exp: scalemachine node %d request %d: %w", n, seq, err))
	} else if st == dma.StatusFailure {
		w.fail(fmt.Errorf("exp: scalemachine node %d request %d refused", n, seq))
	}
	w.leaveEngine(n, m)
}

// deliver is the fabric receive hook. A request lands in the server's
// memory, is validated by a real CPU load, and turns around a response
// through the server's own engine; a response lands, is read, and
// closes the latency sample.
func (w *scaleMWorld) deliver(m net.SMsg, now sim.Time) {
	if w.err != nil {
		return
	}
	d := m.Dst
	mm := w.hm.Machine(d)
	switch m.Kind {
	case scaleKindReq:
		w.hm.Floor(d, now)
		// The fabric lands the payload tag at the request landing page
		// (net.Fabric semantics: fabric address = destination physical
		// address), then the server validates it with a real load and
		// initiates the response DMA back to the client's response
		// landing page.
		if err := w.tag(mm, scaleMReqOff, m.Arg); err != nil {
			w.fail(err)
			return
		}
		if _, err := mm.CPU.Load(w.p.AddressSpace(), scaleMLandReqVA, phys.Size64); err != nil {
			w.fail(err)
			return
		}
		mm.CPU.Spin(scaleMSrvCycles)
		if err := w.tag(mm, w.respPA, m.Arg); err != nil {
			w.fail(err)
			return
		}
		st, err := w.h.DirectDMA(&userdma.DirectCPU{M: mm, P: w.p}, scaleMRespVA, scaleMPeerVA(m.Src)+scaleMPage, scaleMRespBytes)
		if err != nil {
			w.fail(fmt.Errorf("exp: scalemachine node %d response to %d: %w", d, m.Src, err))
		} else if st == dma.StatusFailure {
			w.fail(fmt.Errorf("exp: scalemachine node %d response to %d refused", d, m.Src))
		}
		w.leaveEngine(d, mm)
	case scaleKindResp:
		w.lats[d] = append(w.lats[d], now-w.issueAt[d][m.Arg])
		w.completed[d]++
		w.hm.Floor(d, now)
		if err := w.tag(mm, scaleMRespOff, m.Arg); err != nil {
			w.fail(err)
			return
		}
		// The client's completion read.
		if _, err := mm.CPU.Load(w.p.AddressSpace(), scaleMLandRespVA, phys.Size64); err != nil {
			w.fail(err)
			return
		}
		w.hm.Leave(d)
	}
}

// observe folds the finished world into a ScaleMachinePoint, node order
// throughout so the fold is layout-invariant.
func (w *scaleMWorld) observe() ScaleMachinePoint {
	var sample stats.Sample
	var issued, completed uint64
	for n := 0; n < w.nodes; n++ {
		issued += w.issued[n]
		completed += w.completed[n]
		for _, l := range w.lats[n] {
			sample.Add(l)
		}
	}
	t := w.c.Totals()
	latMin, latMax := w.c.LatencyBounds()
	pt := ScaleMachinePoint{
		ScalePoint: ScalePoint{
			Nodes:   w.nodes,
			Shards:  w.c.Config().Shards,
			Arrival: w.arrival,
			Tenants: w.tenants,
			Bytes:   w.bytes,
			Dur:     w.dur,

			Issued:    issued,
			Completed: completed,
			Mean:      sample.Mean(),
			P50:       sample.Percentile(50),
			P99:       sample.Percentile(99),

			Deliveries:  t.Delivered,
			Events:      t.Events,
			Windows:     t.Windows,
			Finish:      t.Finish,
			Fingerprint: w.c.Fingerprint(),
		},
		Protocol:  w.protocol,
		Boot:      w.boot,
		Lookahead: w.c.Lookahead(),
		LatMin:    latMin,
		LatMax:    latMax,
	}
	// Machine digest: FNV-1a over every node's engine counters and CPU
	// high-water mark, in node order.
	digest := uint64(1469598103934665603)
	mix := func(v uint64) {
		digest ^= v
		digest *= 1099511628211
	}
	for n := 0; n < w.nodes; n++ {
		st := w.hm.Machine(n).Engine.Stats()
		mix(st.ShadowStores)
		mix(st.ShadowLoads)
		mix(st.KeyMismatches)
		mix(st.SeqResets)
		mix(st.Started)
		mix(st.Rejected)
		mix(st.Completed)
		mix(st.BytesMoved)
		mix(st.AtomicOps)
		mix(st.RemoteStarted)
		mix(st.AbortedPending)
		mix(uint64(w.hm.Busy(n)))
		pt.EngStarted += st.Started
		pt.EngRejected += st.Rejected
		pt.EngCompleted += st.Completed
		pt.EngBytesMoved += st.BytesMoved
	}
	pt.MachineDigest = digest
	if pt.Finish > pt.Boot {
		secs := float64(pt.Finish-pt.Boot) / 1e12
		pt.GoodputMBps = float64(completed) * float64(w.bytes) / secs / 1e6
		pt.GoodputRPCs = float64(completed) / secs
	}
	return pt
}

// scaleMachineCells expands the experiment: one cell per selected
// protocol, each a complete hosted-machine world. Like the flat scale
// experiment, p.Procs is the INTRA-world worker count; the protocol
// cells themselves also fan out on the cell runner.
func scaleMachineCells(p Params) ([]Cell, error) {
	nodes, shards, _, _, _, _, _, err := scaleMachineParams(p)
	if err != nil {
		return nil, err
	}
	methods, err := scaleMProtocols(p.Protocol)
	if err != nil {
		return nil, err
	}
	cfg := fmt.Sprintf("%dn/%ds", nodes, shards)
	cells := make([]Cell, len(methods))
	for i, method := range methods {
		method := method
		cells[i] = Cell{Method: method.Name(), Config: cfg, Run: func() (Obs, bool, error) {
			pt, err := RunScaleMachine(method, p, p.Procs)
			if err != nil {
				return Obs{}, false, fmt.Errorf("%s: %w", method.Name(), err)
			}
			return Obs{ScaleM: []ScaleMachinePoint{pt}}, false, nil
		}}
	}
	return cells, nil
}

func scaleMachineText(r *Result, p Params) string {
	pts := r.ScaleMachinePoints()
	var b strings.Builder
	if len(pts) > 0 {
		pt := pts[0]
		fmt.Fprintf(&b, "Machines at cluster scale — %d nodes, %d shards, %d tenants/node, %d RPC/s/node, %dB requests, %v window\n",
			pt.Nodes, pt.Shards, pt.Tenants, pt.Arrival, pt.Bytes, pt.Dur)
		fmt.Fprintf(&b, "racks of %d (cross-rack %v, intra %v), lookahead %v, boot %v\n\n",
			scaleMRackSize, pt.LatMax, pt.LatMin, pt.Lookahead, pt.Boot)
	}
	tb := stats.NewTable("initiation protocol", "completed", "goodput", "p50", "p99", "rejected", "digest")
	for _, pt := range pts {
		tb.AddRow(pt.Protocol,
			fmt.Sprintf("%d/%d", pt.Completed, pt.Issued),
			fmt.Sprintf("%.1f MB/s (%.0f RPC/s)", pt.GoodputMBps, pt.GoodputRPCs),
			pt.P50, pt.P99,
			pt.EngRejected,
			fmt.Sprintf("%016x", pt.MachineDigest))
	}
	b.WriteString(tb.String())
	b.WriteByte('\n')
	for _, pt := range pts {
		fmt.Fprintf(&b, "%s: engine started/completed %d/%d, %d B moved, %d deliveries, %d windows, finish %v, fingerprint %016x\n",
			pt.Protocol, pt.EngStarted, pt.EngCompleted, pt.EngBytesMoved,
			pt.Deliveries, pt.Windows, pt.Finish, pt.Fingerprint)
	}
	b.WriteString("\nOne full machine per node: every RPC runs the protocol's real initiation\n")
	b.WriteString("sequence and moves through the node's actual DMA engine; identical output\n")
	b.WriteString("at every shard and worker count (the determinism pin).\n")
	return b.String()
}
