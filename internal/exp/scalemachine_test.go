package exp

import (
	"strings"
	"testing"

	"uldma/internal/fault"
	"uldma/internal/sim"
)

// normalizeScaleM strips the one configuration field that legitimately
// differs across layouts (the shard count) so ScaleMachinePoints from
// different partitions of the same world can be compared whole —
// including the engine aggregates and the per-node machine digest.
func normalizeScaleM(pt ScaleMachinePoint) ScaleMachinePoint {
	pt.Shards = 0
	return pt
}

// TestScaleMachineShardParity is the tentpole pin: a 128-node world of
// FULL machines — every RPC running the extshadow initiation sequence
// through its node's real DMA engine — produces an IDENTICAL
// observation (latencies, engine counters, machine digest, cluster
// fingerprint) at shards × workers {1,4,8}. The world is small enough
// to run the full 3×3 grid under the race detector too.
func TestScaleMachineShardParity(t *testing.T) {
	method, err := scaleMMethod("extshadow")
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Nodes: 128, Arrival: 5000, ScaleDur: sim.Millisecond}
	var ref ScaleMachinePoint
	have := false
	for _, shards := range []int{1, 4, 8} {
		for _, workers := range []int{1, 4, 8} {
			p.Shards = shards
			pt, err := RunScaleMachine(method, p, workers)
			if err != nil {
				t.Fatalf("shards=%d workers=%d: %v", shards, workers, err)
			}
			if pt.Shards != shards {
				t.Fatalf("ScaleMachinePoint.Shards = %d, want %d", pt.Shards, shards)
			}
			got := normalizeScaleM(pt)
			if !have {
				ref, have = got, true
				if ref.Completed == 0 || ref.EngCompleted == 0 || ref.MachineDigest == 0 {
					t.Fatalf("degenerate reference run: %+v", ref)
				}
				if ref.EngRejected != 0 {
					t.Fatalf("%d engine rejections — the Bump serialization should keep engines free", ref.EngRejected)
				}
				continue
			}
			if got != ref {
				t.Errorf("shards=%d workers=%d diverges:\n got %+v\nwant %+v", shards, workers, got, ref)
			}
		}
	}
}

// TestScaleMachineProtocols pins the paper's Table-1 thesis at cluster
// scale: with real initiation sequences, the kernel-mediated protocol's
// RPC latency is strictly worse than every user-level protocol's.
func TestScaleMachineProtocols(t *testing.T) {
	p := Params{Nodes: 16, Shards: 4, Arrival: 5000, ScaleDur: sim.Millisecond}
	p50 := map[string]sim.Time{}
	for _, name := range []string{"kernel", "extshadow", "keybased", "repeated"} {
		method, err := scaleMMethod(name)
		if err != nil {
			t.Fatal(err)
		}
		pt, err := RunScaleMachine(method, p, 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if pt.Completed == 0 {
			t.Fatalf("%s: no completed RPCs", name)
		}
		p50[pt.Protocol] = pt.P50
	}
	for _, user := range []string{"extshadow", "keybased", "repeated"} {
		if p50[user] >= p50["kernel"] {
			t.Errorf("p50 %s (%v) >= kernel (%v) — kernel traps should dominate", user, p50[user], p50["kernel"])
		}
	}
}

// TestScaleMachineThousandNode is the acceptance pin at cluster scale:
// 1000 full machines, byte-identical across the shard × worker grid.
// Under the race detector the grid shrinks to its diagonal (the full
// grid is pinned above at 128 nodes; race multiplies event cost ~10×).
func TestScaleMachineThousandNode(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-machine world in -short mode")
	}
	method, err := scaleMMethod("extshadow")
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Nodes: 1000, Arrival: 2000, ScaleDur: sim.Millisecond}
	grid := [][2]int{{1, 1}, {4, 1}, {4, 4}, {8, 8}, {1, 4}, {8, 1}}
	if raceEnabled {
		grid = [][2]int{{1, 1}, {4, 4}, {8, 8}}
	}
	var ref ScaleMachinePoint
	have := false
	for _, sw := range grid {
		p.Shards = sw[0]
		pt, err := RunScaleMachine(method, p, sw[1])
		if err != nil {
			t.Fatalf("shards=%d workers=%d: %v", sw[0], sw[1], err)
		}
		got := normalizeScaleM(pt)
		if !have {
			ref, have = got, true
			if ref.Nodes != 1000 {
				t.Fatalf("Nodes = %d, want 1000", ref.Nodes)
			}
			if ref.Completed == 0 || ref.EngCompleted == 0 {
				t.Fatalf("degenerate reference run: %+v", ref)
			}
			continue
		}
		if got != ref {
			t.Errorf("shards=%d workers=%d diverges at 1000 machines:\n got %+v\nwant %+v", sw[0], sw[1], got, ref)
		}
	}
}

// TestScaleMachineFaultParity pins the cross-shard fault injector on
// the hosted-machine path: the same (plan, seed) perturbs the same
// world identically at every layout, and the zero plan is byte-equal
// to no plane at all (the golden-invariance proof).
func TestScaleMachineFaultParity(t *testing.T) {
	p := Params{Nodes: 32, Arrival: 20000, ScaleDur: sim.Millisecond}
	plan := fault.Plan{Default: fault.LinkFaults{Drop: 0.05, Dup: 0.02}}
	layouts := [][2]int{{1, 1}, {4, 4}, {8, 8}, {1, 8}, {8, 1}}
	if raceEnabled {
		layouts = [][2]int{{1, 1}, {4, 4}, {8, 8}}
	}
	var ref ScalePoint
	var refDrops, refDups uint64
	have := false
	for _, sw := range layouts {
		p.Shards = sw[0]
		pt, drops, dups, err := RunScaleFaulted(p, sw[1], fault.New(plan, 77))
		if err != nil {
			t.Fatalf("shards=%d workers=%d: %v", sw[0], sw[1], err)
		}
		got := normalizeScale(pt)
		if !have {
			ref, refDrops, refDups, have = got, drops, dups, true
			if refDrops == 0 || refDups == 0 {
				t.Fatalf("plan drew no faults (drops=%d dups=%d) — the parity check is vacuous", refDrops, refDups)
			}
			continue
		}
		if got != ref || drops != refDrops || dups != refDups {
			t.Errorf("shards=%d workers=%d diverges under faults:\n got %+v (drops=%d dups=%d)\nwant %+v (drops=%d dups=%d)",
				sw[0], sw[1], got, drops, dups, ref, refDrops, refDups)
		}
	}

	// Zero plan: provably inert — byte-equal to no plane at all.
	p.Shards = 4
	plain, err := RunScale(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	zeroed, drops, dups, err := RunScaleFaulted(p, 4, fault.New(fault.Plan{}, 99))
	if err != nil {
		t.Fatal(err)
	}
	if zeroed != plain || drops != 0 || dups != 0 {
		t.Errorf("zero-plan run differs from plain run:\n got %+v (drops=%d dups=%d)\nwant %+v", zeroed, drops, dups, plain)
	}
}

// TestScaleMachineSnapshotRestore drives the whole quiescent-state
// chain — ShardedCluster.Snapshot → HostedMachines.SnapshotState →
// machine.SnapshotHosted, plus the world's own Inner payload: capture
// the pre-traffic fleet, run it, rewind, run again, and demand the
// SAME observation both times.
func TestScaleMachineSnapshotRestore(t *testing.T) {
	method, err := scaleMMethod("keybased")
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Nodes: 16, Shards: 4, Arrival: 5000, ScaleDur: sim.Millisecond}
	w, err := newScaleMachineWorld(method, p)
	if err != nil {
		t.Fatal(err)
	}
	sn, err := w.c.Snapshot()
	if err != nil {
		t.Fatalf("pre-traffic snapshot: %v", err)
	}
	w.prime()
	first, err := w.run(2)
	if err != nil {
		t.Fatal(err)
	}
	if first.Completed == 0 {
		t.Fatalf("degenerate first run: %+v", first)
	}
	if err := w.c.Restore(sn); err != nil {
		t.Fatalf("restore: %v", err)
	}
	w.prime()
	second, err := w.run(2)
	if err != nil {
		t.Fatal(err)
	}
	if second != first {
		t.Errorf("restored world diverges:\n got %+v\nwant %+v", second, first)
	}
}

func TestScaleMachineValidation(t *testing.T) {
	good, err := scaleMMethod("extshadow")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		p    Params
	}{
		{"one node", Params{Nodes: 1}},
		{"nodes above the remote window", Params{Nodes: scaleMMaxNodes + 1}},
		{"request below the tag", Params{ScaleBytes: 4}},
		{"request above a page", Params{ScaleBytes: scaleMPage + 1}},
		{"negative arrival", Params{Arrival: -10}},
	}
	for _, tc := range cases {
		if _, err := RunScaleMachine(good, tc.p, 1); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
		// The cell expansion path must reject the same configs, so the
		// tools fail before spinning up a runner.
		if _, err := scaleMachineCells(tc.p); err == nil {
			t.Errorf("%s: scaleMachineCells accepted", tc.name)
		}
	}
	if _, err := scaleMMethod("bogus"); err == nil {
		t.Error("unknown protocol name accepted")
	}
	if _, err := scaleMachineCells(Params{Protocol: "bogus"}); err == nil {
		t.Error("scaleMachineCells accepted an unknown protocol")
	}
	for _, name := range []string{"", "all"} {
		ms, err := scaleMProtocols(name)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if len(ms) != 4 {
			t.Errorf("%q expands to %d protocols, want 4", name, len(ms))
		}
	}
}

// The registered experiment renders through the shared runner like
// every other spec, and its typed JSON rows are populated.
func TestScaleMachineRenders(t *testing.T) {
	p := Params{Nodes: 8, Shards: 2, Arrival: 5000, ScaleDur: 500 * sim.Microsecond, Protocol: "extshadow"}
	out, err := Report("scalemachine", Text, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Machines at cluster scale", "initiation protocol", "goodput", "digest", "determinism pin"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	r, err := RunNamed("scalemachine", p)
	if err != nil {
		t.Fatal(err)
	}
	rows := ScaleMachineRows(r)
	if len(rows) != 1 || rows[0].Label != "extshadow/8n/2s" || rows[0].Completed == 0 {
		t.Fatalf("ScaleMachineRows = %+v, want one populated extshadow/8n/2s row", rows)
	}
	if rows[0].MachineDigest == "0000000000000000" {
		t.Fatalf("MachineDigest unset in %+v", rows[0])
	}
	if rows[0].HostNs != 0 {
		t.Fatalf("HostNs = %d before any -bench fill, want omitted zero", rows[0].HostNs)
	}

	// The full line-up: one cell per protocol.
	p.Protocol = "all"
	r, err = RunNamed("scalemachine", p)
	if err != nil {
		t.Fatal(err)
	}
	if rows := ScaleMachineRows(r); len(rows) != 4 {
		t.Fatalf("protocol=all yields %d rows, want 4", len(rows))
	}
}
