package exp

// The adversarial search experiments of §3.3: the exhaustive
// interleaving hunt (a SEARCH experiment — a hijacking cell stops the
// sweep, and the lowest-indexed hit in schedule order wins regardless
// of worker scheduling) and the seeded random campaign.

import (
	"strings"

	userdma "uldma/internal/core"
)

func init() {
	Register(&Experiment{
		Name:  "exhaustive",
		Doc:   "F8 — exhaustive interleaving search of the 5-access victim vs a fixed attacker",
		Cells: exhaustiveCells,
	})
	Register(&Experiment{
		Name:  "campaign",
		Doc:   "F8 — seeded random adversarial campaigns against the 5-access sequence",
		Cells: campaignCells,
	})
}

// scheduleString renders a slot schedule the way the attacksim tool
// spells them: V for a victim slot, A for an attacker slot.
func scheduleString(sched []bool) string {
	var b strings.Builder
	for _, victim := range sched {
		if victim {
			b.WriteByte('V')
		} else {
			b.WriteByte('A')
		}
	}
	return b.String()
}

func exhaustiveCells(p Params) ([]Cell, error) {
	schedules := userdma.Interleavings(userdma.VictimSlots, p.Slots)
	cells := make([]Cell, len(schedules))
	for i := range schedules {
		i := i
		cells[i] = Cell{Seed: uint64(i), Config: scheduleString(schedules[i]), Run: func() (Obs, bool, error) {
			o, err := userdma.RunInterleaving(schedules[i])
			if err != nil {
				return Obs{}, false, err
			}
			// A hijack ends the search: the runner keeps the lowest-
			// indexed one in schedule order, like the serial hunt.
			return Obs{Attack: &o}, o.Hijacked, nil
		}}
	}
	return cells, nil
}

// ExhaustiveInterleavings runs the "exhaustive" search with the given
// attacker slot budget. The returned (tried, hijack, err) triple is
// identical to the serial search's for any worker count: schedules are
// enumerated in the same order, `tried` counts schedules up to and
// including the stopping one, and the first hijack IN SCHEDULE ORDER
// wins, not the first found on the wall clock.
func ExhaustiveInterleavings(slots, procs int) (tried int, hijack *userdma.AttackOutcome, err error) {
	r, err := RunNamed("exhaustive", Params{Slots: slots, Procs: procs})
	if err != nil {
		if r != nil {
			return r.Tried, nil, err
		}
		return 0, nil, err
	}
	if r.Stopped != nil {
		return r.Tried, r.Stopped.Obs.Attack, nil
	}
	return r.Tried, nil, nil
}

func campaignCells(p Params) ([]Cell, error) {
	n := p.Seeds
	if n < 0 {
		n = 0
	}
	cells := make([]Cell, n)
	for i := range cells {
		i := i
		cells[i] = Cell{Seed: uint64(i + 1), Run: func() (Obs, bool, error) {
			o, err := userdma.RandomAdversarialRun(uint64(i+1), p.ShareA, p.LooseStatus)
			if err != nil {
				return Obs{}, false, err
			}
			return Obs{Attack: &o}, false, nil
		}}
	}
	return cells, nil
}

// Campaign runs RandomAdversarialRun for seeds 1..n concurrently and
// returns the outcomes in seed order (byte-identical to a serial seed
// loop: each run owns its machine and its seeded RNG).
func Campaign(n int, shareA, looseStatus bool, procs int) ([]userdma.AttackOutcome, error) {
	r, err := RunNamed("campaign", Params{Seeds: n, ShareA: shareA, LooseStatus: looseStatus, Procs: procs})
	if err != nil {
		return nil, err
	}
	return r.Outcomes(), nil
}
