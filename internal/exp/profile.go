package exp

// Shared profiling support for the cmd/ tools. Importing this package
// gives every tool -cpuprofile and -memprofile flags; each tool calls
// StartProfiles right after flag.Parse and Exit instead of os.Exit, so
// profiles are flushed on every exit path.

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

var (
	cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")

	stopProfiles func()
)

// StartProfiles begins CPU profiling if -cpuprofile was given. Call it
// once, after flag.Parse. The profiles are written by Exit (or by
// calling the returned stop function directly, for callers that manage
// their own exits).
func StartProfiles() (stop func(), err error) {
	var cpuOut *os.File
	if *cpuProfile != "" {
		cpuOut, err = os.Create(*cpuProfile)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuOut); err != nil {
			cpuOut.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	done := false
	stop = func() {
		if done {
			return
		}
		done = true
		if cpuOut != nil {
			pprof.StopCPUProfile()
			cpuOut.Close()
		}
		if *memProfile != "" {
			out, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			runtime.GC() // materialize the final live set
			if err := pprof.Lookup("allocs").WriteTo(out, 0); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
			out.Close()
		}
	}
	stopProfiles = stop
	return stop, nil
}

// Exit flushes any active profiles and exits with the given code. The
// tools use it in place of os.Exit so that -cpuprofile/-memprofile
// output survives error paths.
func Exit(code int) {
	if stopProfiles != nil {
		stopProfiles()
	}
	os.Exit(code)
}
