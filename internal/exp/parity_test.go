package exp

// The experiment runner promises byte-identical results to the serial
// measurement loops for ANY worker count. These tests pin that promise
// against the core package's serial counterparts: every cell builds its
// own machine, so parallelising over cells must not perturb a single
// simulated picosecond. They run under -race in CI.

import (
	"reflect"
	"testing"

	userdma "uldma/internal/core"
)

var parityWorkers = []int{1, 2, 3, 4, 8}

func TestTable1Parity(t *testing.T) {
	const iters = 50
	want, err := userdma.Table1(iters)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range parityWorkers {
		got, err := Table1(iters, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: exp.Table1 diverged from serial Table1\n got %+v\nwant %+v", w, got, want)
		}
	}
}

func TestBusSweepParity(t *testing.T) {
	const iters = 30
	freqs := DefaultFreqs()
	want, err := userdma.BusSweep(iters, freqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range parityWorkers {
		groups, err := BusSweep(iters, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if len(groups) != len(freqs) {
			t.Fatalf("workers=%d: %d frequency groups, want %d", w, len(groups), len(freqs))
		}
		for i, g := range groups {
			if g.Freq != freqs[i] {
				t.Errorf("workers=%d: group %d is %v, want %v", w, i, g.Freq, freqs[i])
			}
			if !reflect.DeepEqual(g.Rows, want[g.Freq]) {
				t.Errorf("workers=%d freq=%v: exp.BusSweep diverged from serial BusSweep", w, g.Freq)
			}
		}
	}
}

func TestBreakEvenParity(t *testing.T) {
	methods := BreakEvenMethods()
	want := make([][]userdma.BreakEvenPoint, len(methods))
	for i, m := range methods {
		pts, err := userdma.BreakEven(m, userdma.DefaultSizes)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = pts
	}
	for _, w := range parityWorkers {
		groups, err := BreakEven(w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if len(groups) != len(methods) {
			t.Fatalf("workers=%d: %d method groups, want %d", w, len(groups), len(methods))
		}
		for i, g := range groups {
			if g.Method.Name() != methods[i].Name() {
				t.Errorf("workers=%d: group %d is %s, want %s", w, i, g.Method.Name(), methods[i].Name())
			}
			if !reflect.DeepEqual(g.Points, want[i]) {
				t.Errorf("workers=%d method=%s: exp.BreakEven diverged from serial BreakEven",
					w, g.Method.Name())
			}
		}
	}
}

func TestTrendSweepParity(t *testing.T) {
	const iters = 20
	want, err := userdma.TrendSweep(iters)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range parityWorkers {
		got, err := TrendSweep(iters, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: exp.TrendSweep diverged from serial TrendSweep\n got %+v\nwant %+v",
				w, got, want)
		}
	}
}

func TestExhaustiveInterleavingsParity(t *testing.T) {
	for _, slots := range []int{1, 2, 3} {
		wantTried, wantHijack, wantErr := userdma.ExhaustiveInterleavings(slots)
		if wantErr != nil {
			t.Fatal(wantErr)
		}
		for _, w := range parityWorkers {
			tried, hijack, err := ExhaustiveInterleavings(slots, w)
			if err != nil {
				t.Fatalf("slots=%d workers=%d: %v", slots, w, err)
			}
			if tried != wantTried {
				t.Errorf("slots=%d workers=%d: tried %d, serial %d", slots, w, tried, wantTried)
			}
			if !reflect.DeepEqual(hijack, wantHijack) {
				t.Errorf("slots=%d workers=%d: hijack %+v, serial %+v", slots, w, hijack, wantHijack)
			}
		}
	}
}

func TestCampaignParity(t *testing.T) {
	const n = 9
	want := make([]userdma.AttackOutcome, n)
	for seed := 1; seed <= n; seed++ {
		o, err := userdma.RandomAdversarialRun(uint64(seed), false, false)
		if err != nil {
			t.Fatal(err)
		}
		want[seed-1] = o
	}
	for _, w := range parityWorkers {
		got, err := Campaign(n, false, false, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: exp.Campaign diverged from serial seed loop", w)
		}
	}
}

func TestContentionParity(t *testing.T) {
	const iters = 100
	want, err := userdma.ContextContention(userdma.ExtShadow{}, 6, iters/10+1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range parityWorkers {
		got, err := Contention(iters, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: exp.Contention diverged from serial ContextContention", w)
		}
	}
}

// Repeating a parallel sweep with different seeds of work (three
// distinct iteration counts stand in for "three seeds": each produces a
// different deterministic table) guards against any worker-count- or
// scheduling-order-dependence leaking into results.
func TestTable1StableAcrossRuns(t *testing.T) {
	for _, iters := range []int{10, 25, 40} {
		first, err := Table1(iters, 4)
		if err != nil {
			t.Fatal(err)
		}
		for run := 0; run < 2; run++ {
			again, err := Table1(iters, 4)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(again, first) {
				t.Fatalf("iters=%d run=%d: exp.Table1 not reproducible", iters, run)
			}
		}
	}
}

// The old bus-sweep driver returned a map keyed by frequency; iterating
// it while rendering was latent nondeterminism. The experiment result
// is an ordered slice — rendering the SAME sweep twice, and a re-run
// of the sweep once more, must produce identical bytes.
func TestBusSweepRenderDeterministic(t *testing.T) {
	const iters = 20
	p := Params{Iters: iters, Procs: 4}
	r, err := RunNamed("bussweep", p)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []Format{Text, Markdown} {
		a, err := RenderNamed("bussweep", f, r, p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RenderNamed("bussweep", f, r, p)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("format %d: rendering the same bussweep result twice differed", f)
		}
		r2, err := RunNamed("bussweep", p)
		if err != nil {
			t.Fatal(err)
		}
		c, err := RenderNamed("bussweep", f, r2, p)
		if err != nil {
			t.Fatal(err)
		}
		if a != c {
			t.Fatalf("format %d: re-running the bussweep changed the rendered bytes", f)
		}
	}
}
