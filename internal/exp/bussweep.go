package exp

// Experiment X4: the bus-frequency sweep. The grid is frequency ×
// method in frequency-major order, and — unlike the old
// map[sim.Hz][]InitiationResult driver — the result is ORDERED by cell
// index, so rendering the sweep is deterministic byte for byte (the
// regression test renders it twice and compares).

import (
	"fmt"
	"strings"

	userdma "uldma/internal/core"
	"uldma/internal/machine"
	"uldma/internal/sim"
	"uldma/internal/stats"
)

func init() {
	Register(&Experiment{
		Name:  "bussweep",
		Doc:   "X4 — Table 1 methods swept across bus frequencies (12.5/33/66 MHz)",
		Cells: busSweepCells,
		Render: map[Format]RenderFunc{
			Text:     busSweepText,
			Markdown: busSweepMarkdown,
		},
	})
}

func busSweepCells(p Params) ([]Cell, error) {
	methods := userdma.Methods()
	var cells []Cell
	for _, freq := range p.freqs() {
		for _, method := range methods {
			freq, method := freq, method
			cells = append(cells, Cell{Method: method.Name(), Config: freq.String(), Run: func() (Obs, bool, error) {
				var cfg machine.Config
				if freq == 12_500_000 {
					cfg = userdma.ConfigFor(method)
				} else {
					cfg = machine.PCI(method.EngineMode(), method.SeqLen(), freq)
				}
				r, err := userdma.MeasureMethod(method, cfg, p.Iters)
				if err != nil {
					return Obs{}, false, fmt.Errorf("%v/%s: %w", freq, method.Name(), err)
				}
				return Obs{Inits: []userdma.InitiationResult{r}}, false, nil
			}})
		}
	}
	return cells, nil
}

// FreqRows is one frequency's slice of the ordered sweep.
type FreqRows struct {
	Freq sim.Hz
	Rows []userdma.InitiationResult
}

// BusSweepGroups slices an ordered bussweep result per frequency, in
// the frequency-axis order.
func BusSweepGroups(r *Result, p Params) []FreqRows {
	freqs := p.freqs()
	if len(freqs) == 0 || len(r.Cells)%len(freqs) != 0 {
		return nil
	}
	per := len(r.Cells) / len(freqs)
	out := make([]FreqRows, len(freqs))
	rows := r.Initiations()
	for i, f := range freqs {
		out[i] = FreqRows{Freq: f, Rows: rows[i*per : (i+1)*per]}
	}
	return out
}

// BusSweep runs the "bussweep" experiment over the canonical X4
// frequency axis and returns the ordered per-frequency groups.
func BusSweep(iters, procs int) ([]FreqRows, error) {
	p := Params{Iters: iters, Procs: procs}
	r, err := RunNamed("bussweep", p)
	if err != nil {
		return nil, err
	}
	return BusSweepGroups(r, p), nil
}

// freqHeader names a sweep column the way the tools always have:
// TurboChannel at the calibrated 12.5 MHz, PCI everywhere else.
func freqHeader(f sim.Hz) string {
	if f == 12_500_000 {
		return "TC 12.5MHz"
	}
	return "PCI " + f.String()
}

func busSweepText(r *Result, p Params) string {
	var b strings.Builder
	b.WriteString("Bus-frequency sweep (X4) — mean initiation (µs)\n")
	groups := BusSweepGroups(r, p)
	headers := []string{"DMA algorithm"}
	for _, g := range groups {
		headers = append(headers, freqHeader(g.Freq))
	}
	tb := stats.NewTable(headers...)
	if len(groups) > 0 {
		for i, res := range groups[0].Rows {
			row := []any{res.Method}
			for _, g := range groups {
				row = append(row, fmt.Sprintf("%.2f", g.Rows[i].Mean.Microseconds()))
			}
			tb.AddRow(row...)
		}
	}
	b.WriteString(tb.String())
	b.WriteByte('\n')
	return b.String()
}

func busSweepMarkdown(r *Result, p Params) string {
	var b strings.Builder
	b.WriteString("\n## X4 — bus-frequency sweep (mean µs)\n")
	groups := BusSweepGroups(r, p)
	b.WriteString("\n| DMA algorithm |")
	for _, g := range groups {
		fmt.Fprintf(&b, " %s |", freqHeader(g.Freq))
	}
	b.WriteString("\n|---|")
	for range groups {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	if len(groups) > 0 {
		for i, res := range groups[0].Rows {
			fmt.Fprintf(&b, "| %s |", res.Method)
			for _, g := range groups {
				fmt.Fprintf(&b, " %.2f |", g.Rows[i].Mean.Microseconds())
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
