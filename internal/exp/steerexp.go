package exp

// The concrete steered searches behind `dmabench -steer`, `report
// -steer` and `oslat -steer`: four adaptive policies on the RunSteered
// driver, each replacing an exhaustive registry grid.
//
//   - breakeven: per-method binary search of the first size whose
//     transfer outweighs its initiation. The predicate is monotone in
//     size (initiation is size-independent, wire time grows), so a
//     bisect lane per method lands on the exhaustive grid's exact
//     crossover in ceil(log2(n+1)) probes instead of n.
//   - paging: the recovery-policy grid walked wave by wave up the
//     working-set axis, with a live feed (userdma.PagingBenchLive)
//     sampling fault/eviction watch cells inside every cell; a policy
//     strictly dominated on BOTH p99 and goodput for two consecutive
//     waves is aborted and its remaining cells never run.
//   - faultzoom: the faultsweep drop axis probed coarsely, then
//     repeatedly split where the watched p99 jumps the most — grid
//     zoom toward the latency knee at a resolution the uniform grid
//     would need several times the cells to reach.
//   - oslat: an iteration ladder for the null-syscall mean, stopped at
//     the first rung whose mean agrees with the previous one within
//     0.5% — convergence instead of a fixed worst-case count.
//
// Every search is seed-replayable and worker-count invariant (the
// driver's contract), and every decision lands in the DecisionLog and,
// through it, on the obs trace spine (CatSteer) for Perfetto export.

import (
	"fmt"
	"math"
	"strings"

	userdma "uldma/internal/core"
	"uldma/internal/dma"
	"uldma/internal/fault"
	"uldma/internal/machine"
	"uldma/internal/msg"
	"uldma/internal/obs"
	"uldma/internal/sim"
	"uldma/internal/stats"
)

// fmtSize renders a byte count the way the break-even table heads its
// columns ("64B", "16KiB").
func fmtSize(s uint64) string {
	if s >= 1024 {
		return fmt.Sprintf("%dKiB", s/1024)
	}
	return fmt.Sprintf("%dB", s)
}

// --- breakeven: bisect the monotone frontier ---

// FrontierOutcome is one method's verdict of the steered break-even
// search.
type FrontierOutcome struct {
	Method    string
	Crossover uint64 // first size whose transfer >= initiation
	Found     bool
	Probes    int
}

// frontierLane is one method's bisect state over the size axis: the
// classic first-true search on [0, n] (position n = "no size
// crosses"), one probe per round, lockstep across lanes.
type frontierLane struct {
	method userdma.Method
	snap   *machine.Snapshot
	lo, hi int // open bracket: the first true index lies in [lo, hi]
	probes int
	done   bool
}

// FrontierPolicy bisects the break-even frontier per method. Single
// use: one instance per RunSteered call.
type FrontierPolicy struct {
	sizes []uint64
	lanes []*frontierLane
	last  []int // lane index per cell of the previous batch
}

// NewFrontierPolicy builds the policy over the canonical method and
// size axes.
func NewFrontierPolicy(sizes []uint64) *FrontierPolicy {
	return &FrontierPolicy{sizes: sizes}
}

func (f *FrontierPolicy) label(lane *frontierLane, size uint64) string {
	return lane.method.Name() + "/" + fmtSize(size)
}

// Next implements SteerPolicy: consume the previous round's probe per
// lane, shrink each bracket, and propose the next midpoints.
func (f *FrontierPolicy) Next(r int, history []CellResult, log *DecisionLog) ([]Cell, error) {
	if r == 0 {
		for _, method := range BreakEvenMethods() {
			snap, err := userdma.NewWorld(userdma.ConfigFor(method))
			if err != nil {
				return nil, err
			}
			f.lanes = append(f.lanes, &frontierLane{
				method: method, snap: snap, lo: 0, hi: len(f.sizes),
			})
		}
	} else {
		// The previous batch's results are the history's tail, one per
		// lane that probed, in lane order.
		tail := history[len(history)-len(f.last):]
		for i, laneIdx := range f.last {
			lane := f.lanes[laneIdx]
			pt := tail[i].Obs.Points[0]
			mid := (lane.lo + lane.hi) / 2
			if pt.Transfer >= pt.Initiation {
				lane.hi = mid
			} else {
				lane.lo = mid + 1
			}
			if lane.lo == lane.hi {
				lane.done = true
				if lane.lo < len(f.sizes) {
					log.Add(r, ActAccept, lane.method.Name(),
						fmt.Sprintf("crossover %s after %d probes (exhaustive row: %d cells)",
							fmtSize(f.sizes[lane.lo]), lane.probes, len(f.sizes)))
				} else {
					log.Add(r, ActAccept, lane.method.Name(),
						fmt.Sprintf("no crossover in axis after %d probes", lane.probes))
				}
			}
		}
	}
	var batch []Cell
	f.last = f.last[:0]
	for laneIdx, lane := range f.lanes {
		if lane.done {
			continue
		}
		lane := lane
		mid := (lane.lo + lane.hi) / 2
		size := f.sizes[mid]
		hiLabel := "none"
		if lane.hi < len(f.sizes) {
			hiLabel = fmtSize(f.sizes[lane.hi])
		}
		log.Add(r, ActProbe, f.label(lane, size),
			fmt.Sprintf("bisect: first crossing in [%s, %s]", fmtSize(f.sizes[lane.lo]), hiLabel))
		lane.probes++
		f.last = append(f.last, laneIdx)
		batch = append(batch, Cell{Method: lane.method.Name(), Size: size, Run: func() (Obs, bool, error) {
			pt, err := userdma.BreakEvenCellFrom(lane.snap, lane.method, size)
			if err != nil {
				return Obs{}, false, fmt.Errorf("size %d: %w", size, err)
			}
			return Obs{Points: []userdma.BreakEvenPoint{pt}}, false, nil
		}})
	}
	return batch, nil
}

// Outcomes returns the per-method verdicts once the search has run.
func (f *FrontierPolicy) Outcomes() []FrontierOutcome {
	var out []FrontierOutcome
	for _, lane := range f.lanes {
		o := FrontierOutcome{Method: lane.method.Name(), Probes: lane.probes}
		if lane.lo < len(f.sizes) {
			o.Crossover, o.Found = f.sizes[lane.lo], true
		}
		out = append(out, o)
	}
	return out
}

// --- paging: abort dominated recovery policies mid-grid ---

// dominatedLane is one recovery policy's standing in the wave walk.
type dominatedLane struct {
	policy   dma.RecoveryPolicy
	alive    bool
	domCount int // consecutive waves strictly dominated
	probes   int
	samples  int // live-feed samples its cells reported
}

// DominatedPolicy walks the paging grid in working-set waves (every
// live policy probes each wave in parallel) and aborts a policy's
// remaining cells after `patience` consecutive waves in which some
// other live policy strictly dominates it on p99 AND goodput. Every
// probe runs with the live feed attached — the per-transfer watch-cell
// sampling PagingBenchLive provides — so abort reasons quote counters
// that were read while the dominated cell was still running.
type DominatedPolicy struct {
	pages    []int
	budget   int
	xfers    int
	patience int
	lanes    []*dominatedLane
	wave     int
	last     []int // lane index per cell of the previous wave
}

// NewDominatedPolicy builds the policy over the canonical paging axes.
func NewDominatedPolicy() *DominatedPolicy {
	p := &DominatedPolicy{pages: PagingPages(), budget: pagingBudget, xfers: pagingTransfers, patience: 2}
	for _, pol := range PagingPolicies() {
		p.lanes = append(p.lanes, &dominatedLane{policy: pol, alive: true})
	}
	return p
}

// Next implements SteerPolicy: judge the wave that just completed,
// abort freshly dominated lanes, then propose the next wave.
func (d *DominatedPolicy) Next(r int, history []CellResult, log *DecisionLog) ([]Cell, error) {
	if r > 0 {
		tail := history[len(history)-len(d.last):]
		wave := make(map[int]userdma.PagingResult, len(tail))
		for i, laneIdx := range d.last {
			res := tail[i].Obs.Paging[0]
			wave[laneIdx] = res
			d.lanes[laneIdx].samples += res.LiveSamples
		}
		pages := d.pages[d.wave-1]
		// Judge lanes in batch order: map iteration order must never
		// reach the decision log (worker-count parity is byte-level).
		for _, laneIdx := range d.last {
			a := wave[laneIdx]
			lane := d.lanes[laneIdx]
			dominator := -1
			for _, otherIdx := range d.last {
				if otherIdx == laneIdx {
					continue
				}
				b := wave[otherIdx]
				if b.P99 <= a.P99 && b.GoodputMBps >= a.GoodputMBps &&
					(b.P99 < a.P99 || b.GoodputMBps > a.GoodputMBps) {
					dominator = otherIdx
					break
				}
			}
			if dominator >= 0 {
				lane.domCount++
			} else {
				lane.domCount = 0
			}
			if lane.domCount >= d.patience && lane.alive {
				lane.alive = false
				b := wave[dominator]
				remaining := len(d.pages) - d.wave
				log.Add(r, ActAbort, lane.policy.String(),
					fmt.Sprintf("dominated by %s for %d waves (pages=%d: p99 %.1f vs %.1f µs, goodput %.2f vs %.2f MB/s; live feed: %d samples) — %d cell(s) never run",
						d.lanes[dominator].policy.String(), lane.domCount, pages,
						a.P99.Microseconds(), b.P99.Microseconds(),
						a.GoodputMBps, b.GoodputMBps, lane.samples, remaining))
			}
		}
	}
	if d.wave == len(d.pages) {
		probed := 0
		for _, lane := range d.lanes {
			probed += lane.probes
		}
		log.Add(r, ActAccept, d.survivorNames(),
			fmt.Sprintf("undominated across the axis; probed %d of %d grid cells", probed, len(d.pages)*len(d.lanes)))
		return nil, nil
	}
	pages := d.pages[d.wave]
	d.wave++
	var batch []Cell
	d.last = d.last[:0]
	for laneIdx, lane := range d.lanes {
		if !lane.alive {
			continue
		}
		lane := lane
		log.Add(r, ActProbe, fmt.Sprintf("%s/%dp", lane.policy.String(), pages),
			fmt.Sprintf("wave pages=%d, live feed attached", pages))
		lane.probes++
		d.last = append(d.last, laneIdx)
		batch = append(batch, Cell{
			Method: lane.policy.String(), Size: uint64(pages),
			Config: fmt.Sprintf("budget %d", d.budget),
			Run: func() (Obs, bool, error) {
				// The observer samples the live watch cells after every
				// transfer and never vetoes: the cell's scores must stay
				// byte-identical to the exhaustive grid's (the 0-delta
				// contract), while the sample count proves the feed ran.
				res, err := userdma.PagingBenchLive(lane.policy, pages, d.budget, d.xfers,
					func(userdma.LiveSample) bool { return true })
				if err != nil {
					return Obs{}, false, fmt.Errorf("%v/%d pages: %w", lane.policy, pages, err)
				}
				return Obs{Paging: []userdma.PagingResult{res}}, false, nil
			},
		})
	}
	return batch, nil
}

func (d *DominatedPolicy) survivorNames() string {
	var names []string
	for _, lane := range d.lanes {
		if lane.alive {
			names = append(names, lane.policy.String())
		}
	}
	return strings.Join(names, ",")
}

// Survivors returns the policies never aborted.
func (d *DominatedPolicy) Survivors() []string {
	var names []string
	for _, lane := range d.lanes {
		if lane.alive {
			names = append(names, lane.policy.String())
		}
	}
	return names
}

// --- faultzoom: split the drop axis where p99 inflects ---

type zoomPoint struct {
	drop float64
	p99  sim.Time
}

// ZoomPolicy probes the faultsweep drop axis coarsely at one payload
// size, then splits the adjacent pair with the largest p99 jump,
// `splits` times — binary zoom onto the latency knee. The equivalent
// uniform grid (same resolution everywhere) is what Probed is scored
// against.
type ZoomPolicy struct {
	size    uint64
	msgs    int
	splits  int
	points  []zoomPoint // sorted by drop
	last    []float64   // drops of the previous batch, in order
	pending int         // splits performed
	knee    [2]float64
}

// NewZoomPolicy builds the policy: msgs messages per probe at the
// faultsweep's middle payload size, `splits` zoom steps past the
// coarse axis.
func NewZoomPolicy(msgs, splits int) *ZoomPolicy {
	return &ZoomPolicy{size: FaultSizes()[1], msgs: msgs, splits: splits}
}

func (z *ZoomPolicy) cell(drop float64, log *DecisionLog, r int, act Action, why string) Cell {
	label := fmt.Sprintf("drop=%.4f/%dB", drop, z.size)
	log.Add(r, act, label, why)
	// Seeds derive from the probed drop rate, so a replay of the same
	// search probes byte-identical worlds even for split points the
	// exhaustive axis never had.
	seed := 3000 + uint64(math.Round(drop*100000))
	size, msgs := z.size, z.msgs
	return Cell{Config: label, Size: size, Seed: seed, Run: func() (Obs, bool, error) {
		plan := fault.Plan{Default: fault.LinkFaults{Drop: drop}}
		linger := sim.Time(0)
		if drop > 0 {
			linger = 20 * sim.Millisecond
		}
		cfg := msg.ReliableConfig{
			Config: msg.Config{Slots: 4, SlotPayload: int(size)},
			RTO:    500 * sim.Microsecond,
		}
		res, err := reliableStream(plan, seed, cfg, msgs, size, 0, linger)
		if err != nil {
			return Obs{}, false, fmt.Errorf("%s: %w", label, err)
		}
		elapsed := res.recvTimes[len(res.recvTimes)-1] - res.sendTimes[0]
		pt := FaultPoint{
			Label: label, Drop: drop, Size: size, Msgs: msgs,
			Mean: res.latency.Mean(), P50: res.latency.Percentile(50), P99: res.latency.Percentile(99),
			GoodputMBps: float64(res.bytes) / (float64(elapsed) / 1e12) / 1e6,
			Retransmits: res.tx.Retransmits, Timeouts: res.tx.Timeouts,
			Recredits: res.rx.Recredits,
			Dropped:   res.fabric.FaultDropped, Delivered: res.fabric.Delivered,
		}
		return Obs{Fault: []FaultPoint{pt}}, false, nil
	}}
}

// Next implements SteerPolicy: round 0 probes the coarse axis; each
// later round splits the steepest remaining bracket once.
func (z *ZoomPolicy) Next(r int, history []CellResult, log *DecisionLog) ([]Cell, error) {
	if r == 0 {
		var batch []Cell
		for _, drop := range FaultDrops() {
			z.points = append(z.points, zoomPoint{drop: drop})
			z.last = append(z.last, drop)
			batch = append(batch, z.cell(drop, log, r, ActProbe, "coarse drop axis"))
		}
		return batch, nil
	}
	// Fold the previous batch's p99s into the sorted point set.
	tail := history[len(history)-len(z.last):]
	for i, drop := range z.last {
		for j := range z.points {
			if z.points[j].drop == drop {
				z.points[j].p99 = tail[i].Obs.Fault[0].P99
			}
		}
	}
	lo, hi := z.steepest()
	if z.pending == z.splits {
		width := z.points[hi].drop - z.points[lo].drop
		z.knee = [2]float64{z.points[lo].drop, z.points[hi].drop}
		log.Add(r, ActAccept, fmt.Sprintf("drop=[%.4f,%.4f]", z.knee[0], z.knee[1]),
			fmt.Sprintf("p99 inflection bracketed to width %.4f (%s -> %s µs); equivalent uniform grid: %d cells",
				width, fmtUs(z.points[lo].p99), fmtUs(z.points[hi].p99), z.EquivalentGrid()))
		return nil, nil
	}
	mid := (z.points[lo].drop + z.points[hi].drop) / 2
	why := fmt.Sprintf("largest p99 jump: %s -> %s µs across [%.4f,%.4f]",
		fmtUs(z.points[lo].p99), fmtUs(z.points[hi].p99), z.points[lo].drop, z.points[hi].drop)
	cell := z.cell(mid, log, r, ActSplit, why)
	// Insert the midpoint keeping the axis sorted.
	z.points = append(z.points, zoomPoint{})
	copy(z.points[hi+1:], z.points[hi:])
	z.points[hi] = zoomPoint{drop: mid}
	z.last = z.last[:0]
	z.last = append(z.last, mid)
	z.pending++
	return []Cell{cell}, nil
}

// steepest returns the adjacent measured pair with the largest |Δp99|
// (ties: lowest index — deterministic).
func (z *ZoomPolicy) steepest() (int, int) {
	best, bestGap := 0, sim.Time(-1)
	for i := 0; i+1 < len(z.points); i++ {
		gap := z.points[i+1].p99 - z.points[i].p99
		if gap < 0 {
			gap = -gap
		}
		if gap > bestGap {
			best, bestGap = i, gap
		}
	}
	return best, best + 1
}

// Knee returns the final bracket around the p99 inflection.
func (z *ZoomPolicy) Knee() (lo, hi float64) { return z.knee[0], z.knee[1] }

// EquivalentGrid is the uniform-axis cell count a non-adaptive sweep
// would need to reach the zoom's final resolution across the whole
// drop range.
func (z *ZoomPolicy) EquivalentGrid() int {
	width := z.knee[1] - z.knee[0]
	if width <= 0 {
		return len(FaultDrops())
	}
	axis := FaultDrops()
	span := axis[len(axis)-1] - axis[0]
	return int(math.Ceil(span/width)) + 1
}

func fmtUs(t sim.Time) string { return fmt.Sprintf("%.1f", t.Microseconds()) }

// --- oslat: converge the iteration ladder ---

// ConvergeLadder is the iteration ladder the steered oslat search
// climbs instead of always paying the full default count.
func ConvergeLadder() []int { return []int{250, 500, 1000, 2000, 4000} }

// convergeTolPct is the relative agreement (percent) between two
// consecutive rungs' null-syscall means that counts as converged.
const convergeTolPct = 0.5

// ConvergePolicy climbs the ladder one rung per round and stops at the
// first rung whose null-syscall mean agrees with the previous rung
// within convergeTolPct.
type ConvergePolicy struct {
	rung  int
	means []sim.Time
	iters int
	mean  sim.Time
}

// NewConvergePolicy builds the policy.
func NewConvergePolicy() *ConvergePolicy { return &ConvergePolicy{} }

// Next implements SteerPolicy.
func (c *ConvergePolicy) Next(r int, history []CellResult, log *DecisionLog) ([]Cell, error) {
	ladder := ConvergeLadder()
	if r > 0 {
		mean := history[len(history)-1].Obs.Rows[0].Mean
		c.means = append(c.means, mean)
		if n := len(c.means); n >= 2 {
			prev, cur := c.means[n-2], c.means[n-1]
			deltaPct := 100 * math.Abs(float64(cur)-float64(prev)) / float64(prev)
			if deltaPct <= convergeTolPct {
				c.iters, c.mean = ladder[c.rung-1], cur
				log.Add(r, ActAccept, fmt.Sprintf("iters=%d", c.iters),
					fmt.Sprintf("null syscall %s µs stable (Δ %.3f%% vs previous rung); ladder probed %d of %d",
						fmtUs(cur), deltaPct, c.rung, len(ladder)))
				return nil, nil
			}
		}
	}
	if c.rung == len(ladder) {
		c.iters, c.mean = ladder[c.rung-1], c.means[len(c.means)-1]
		log.Add(r, ActAccept, fmt.Sprintf("iters=%d", c.iters), "ladder exhausted without convergence")
		return nil, nil
	}
	iters := ladder[c.rung]
	c.rung++
	log.Add(r, ActProbe, fmt.Sprintf("iters=%d", iters), "converge: null-syscall mean")
	return []Cell{{Config: fmt.Sprintf("iters=%d", iters), Run: func() (Obs, bool, error) {
		return oslatSyscalls(iters)
	}}}, nil
}

// Converged returns the accepted rung and its mean.
func (c *ConvergePolicy) Converged() (iters int, mean sim.Time) { return c.iters, c.mean }

// --- the suite the tools print ---

// SteerSuite bundles the four steered searches' results and verdicts.
type SteerSuite struct {
	BreakEven      *SteerResult
	BreakEvenLanes []FrontierOutcome
	Paging         *SteerResult
	Survivors      []string
	Zoom           *SteerResult
	KneeLo, KneeHi float64
	ZoomGrid       int
	OSLat          *SteerResult
	OSLatIters     int
	OSLatMean      sim.Time
}

// steerMsgs sizes the zoom probes: Params.Msgs when set, else the
// faultsweep default.
func steerMsgs(p Params) int { return faultMsgs(p) }

// steerZoomSplits is the number of zoom steps past the coarse axis.
const steerZoomSplits = 3

// SteeredBreakEven runs the bisect search. The grid it replaces is the
// exhaustive breakeven experiment: methods × sizes.
func SteeredBreakEven(p Params, tr *obs.Trace) (*SteerResult, []FrontierOutcome, error) {
	pol := NewFrontierPolicy(p.sizes())
	s := &Steered{Name: "breakeven", GridCells: len(BreakEvenMethods()) * len(p.sizes()), Policy: pol}
	res, err := RunSteered(s, p, tr)
	if err != nil {
		return nil, nil, err
	}
	return res, pol.Outcomes(), nil
}

// SteeredPaging runs the dominated-abort walk over the paging grid.
func SteeredPaging(p Params, tr *obs.Trace) (*SteerResult, []string, error) {
	pol := NewDominatedPolicy()
	s := &Steered{Name: "paging", GridCells: len(PagingPolicies()) * len(PagingPages()), Policy: pol}
	res, err := RunSteered(s, p, tr)
	if err != nil {
		return nil, nil, err
	}
	return res, pol.Survivors(), nil
}

// SteeredFaultZoom runs the p99 zoom on the drop axis. The grid it is
// scored against is the uniform axis at the final resolution.
func SteeredFaultZoom(p Params, tr *obs.Trace) (*SteerResult, *ZoomPolicy, error) {
	pol := NewZoomPolicy(steerMsgs(p), steerZoomSplits)
	s := &Steered{Name: "faultzoom", Policy: pol}
	res, err := RunSteered(s, p, tr)
	if err != nil {
		return nil, nil, err
	}
	res.GridCells = pol.EquivalentGrid()
	return res, pol, nil
}

// SteeredOSLat runs the convergence ladder.
func SteeredOSLat(p Params, tr *obs.Trace) (*SteerResult, *ConvergePolicy, error) {
	pol := NewConvergePolicy()
	s := &Steered{Name: "oslat", GridCells: len(ConvergeLadder()), Policy: pol}
	res, err := RunSteered(s, p, tr)
	if err != nil {
		return nil, nil, err
	}
	return res, pol, nil
}

// RunSteerSuite runs all four steered searches (each internally
// parallel on p.Procs) with decisions mirrored to tr when non-nil.
func RunSteerSuite(p Params, tr *obs.Trace) (*SteerSuite, error) {
	s := &SteerSuite{}
	var err error
	if s.BreakEven, s.BreakEvenLanes, err = SteeredBreakEven(p, tr); err != nil {
		return nil, err
	}
	if s.Paging, s.Survivors, err = SteeredPaging(p, tr); err != nil {
		return nil, err
	}
	var zoom *ZoomPolicy
	if s.Zoom, zoom, err = SteeredFaultZoom(p, tr); err != nil {
		return nil, err
	}
	s.KneeLo, s.KneeHi = zoom.Knee()
	s.ZoomGrid = zoom.EquivalentGrid()
	var conv *ConvergePolicy
	if s.OSLat, conv, err = SteeredOSLat(p, tr); err != nil {
		return nil, err
	}
	s.OSLatIters, s.OSLatMean = conv.Converged()
	return s, nil
}

// results summarizes the four searches as (label, result, verdict)
// rows for the renderers.
func (s *SteerSuite) results() []struct {
	Policy  string
	Res     *SteerResult
	Verdict string
} {
	var cross []string
	for _, lane := range s.BreakEvenLanes {
		if lane.Found {
			cross = append(cross, fmt.Sprintf("%s: %s", lane.Method, fmtSize(lane.Crossover)))
		} else {
			cross = append(cross, lane.Method+": none")
		}
	}
	return []struct {
		Policy  string
		Res     *SteerResult
		Verdict string
	}{
		{"bisect frontier", s.BreakEven, strings.Join(cross, "; ")},
		{"dominated-abort", s.Paging, "survivor: " + strings.Join(s.Survivors, ",")},
		{"p99 zoom", s.Zoom, fmt.Sprintf("knee in drop=[%.4f,%.4f]", s.KneeLo, s.KneeHi)},
		{"converge ladder", s.OSLat, fmt.Sprintf("null syscall %s µs @ %d iters", fmtUs(s.OSLatMean), s.OSLatIters)},
	}
}

// SteerSuiteText renders the suite as the fixed-width section dmabench
// and oslat print.
func SteerSuiteText(s *SteerSuite) string {
	var b strings.Builder
	b.WriteString("Steered sweeps — adaptive experiment loop on the live obs plane\n")
	b.WriteString("(exhaustive grids replaced by policy-driven probing: same answers, fewer cells)\n\n")
	tb := stats.NewTable("search", "policy", "probed", "grid", "rounds", "result")
	for _, row := range s.results() {
		tb.AddRow(row.Res.Name, row.Policy, row.Res.Probed(), row.Res.GridCells, row.Res.Rounds, row.Verdict)
	}
	b.WriteString(tb.String())
	b.WriteString("\ndecision trace (probe/split/abort/accept, also on the obs spine as cat=steer):\n")
	for _, row := range s.results() {
		fmt.Fprintf(&b, " %s:\n", row.Res.Name)
		b.WriteString(row.Res.Log.Render())
	}
	return b.String()
}

// SteerSuiteMarkdown renders the suite as cmd/report's section style.
func SteerSuiteMarkdown(s *SteerSuite) string {
	var b strings.Builder
	b.WriteString("\n## Online steering — steered sweeps on the live obs plane\n")
	b.WriteString("\n| search | policy | probed | grid | rounds | result |\n")
	b.WriteString("|---|---|---|---|---|---|\n")
	for _, row := range s.results() {
		fmt.Fprintf(&b, "| %s | %s | %d | %d | %d | %s |\n",
			row.Res.Name, row.Policy, row.Res.Probed(), row.Res.GridCells, row.Res.Rounds, row.Verdict)
	}
	b.WriteString("\n```\n")
	for _, row := range s.results() {
		fmt.Fprintf(&b, "%s:\n", row.Res.Name)
		b.WriteString(row.Res.Log.Render())
	}
	b.WriteString("```\n")
	return b.String()
}

// SteerRow is one steered search (or break-even lane) as the tools
// serialise it for BENCH_steer.json; Name keys benchdiff's flattening.
type SteerRow struct {
	Name           string
	GridCells      int
	Probed         int
	Rounds         int
	Decisions      int
	Splits         int     `json:",omitempty"`
	Aborts         int     `json:",omitempty"`
	CrossoverBytes uint64  `json:",omitempty"`
	Survivor       string  `json:",omitempty"`
	KneeLo         float64 `json:",omitempty"`
	KneeHi         float64 `json:",omitempty"`
	ConvergedIters int     `json:",omitempty"`
	MeanPs         int64   `json:",omitempty"`
}

// SteerRows converts the suite into wire rows: one per search plus one
// per break-even lane (the per-method crossovers the equivalence test
// pins).
func (s *SteerSuite) SteerRows() []SteerRow {
	rows := []SteerRow{{
		Name: "breakeven", GridCells: s.BreakEven.GridCells, Probed: s.BreakEven.Probed(),
		Rounds: s.BreakEven.Rounds, Decisions: len(s.BreakEven.Log.Decisions()),
	}}
	for _, lane := range s.BreakEvenLanes {
		rows = append(rows, SteerRow{
			Name: "breakeven/" + lane.Method, GridCells: s.BreakEven.GridCells / len(s.BreakEvenLanes),
			Probed: lane.Probes, CrossoverBytes: lane.Crossover,
		})
	}
	rows = append(rows,
		SteerRow{
			Name: "paging", GridCells: s.Paging.GridCells, Probed: s.Paging.Probed(),
			Rounds: s.Paging.Rounds, Decisions: len(s.Paging.Log.Decisions()),
			Aborts: s.Paging.Log.count(ActAbort), Survivor: strings.Join(s.Survivors, ","),
		},
		SteerRow{
			Name: "faultzoom", GridCells: s.Zoom.GridCells, Probed: s.Zoom.Probed(),
			Rounds: s.Zoom.Rounds, Decisions: len(s.Zoom.Log.Decisions()),
			Splits: s.Zoom.Log.count(ActSplit), KneeLo: s.KneeLo, KneeHi: s.KneeHi,
		},
		SteerRow{
			Name: "oslat", GridCells: s.OSLat.GridCells, Probed: s.OSLat.Probed(),
			Rounds: s.OSLat.Rounds, Decisions: len(s.OSLat.Log.Decisions()),
			ConvergedIters: s.OSLatIters, MeanPs: int64(s.OSLatMean),
		},
	)
	return rows
}

// SteerTraceScenario runs the steered suite with a trace spine
// attached and returns the decision track as one Perfetto process —
// what `dmabench -steer -trace-out` exports: the search itself on a
// timeline.
func SteerTraceScenario() ([]obs.PerfettoProcess, error) {
	tr := obs.NewTrace(*traceCap, obs.Ring)
	if _, err := RunSteerSuite(Params{Procs: 1}, tr); err != nil {
		return nil, err
	}
	return []obs.PerfettoProcess{{PID: 0, Name: "steered searches (decision track)", Events: tr.Events()}}, nil
}
