// Package exp is the repository's unified experiment engine.
//
// Every quantitative artifact of the reproduction — Table 1, the bus
// sweep, the break-even study, the hardware-generation trend, the
// contention study, the adversarial searches, the OS and cluster
// microbenchmarks — is an *experiment*: a named, declarative spec that
// expands into a grid of independent Cells (method × config × size ×
// seed), each of which builds, runs and observes ONE simulated world.
// One generic runner executes every experiment's cells on the
// internal/par worker pool and folds the observations into a single
// ordered Result schema, which pluggable renderers turn into the
// fixed-width text, markdown and raw-picosecond JSON the cmd/ tools
// print.
//
// The determinism contract, inherited from internal/par and pinned by
// the parity and golden-file tests:
//
//   - Cell expansion is pure: the same Params always yield the same
//     cells in the same order.
//   - Results are ordered by cell index — never keyed by map — so a
//     rendered experiment is byte-identical across runs and across any
//     -procs value.
//   - Errors surface in cell order: the error returned is always that
//     of the lowest-indexed failing cell, exactly as a serial loop
//     would have reported it.
//   - Search experiments (cells that can *stop* the sweep, like the
//     exhaustive interleaving hunt) stop at the lowest-indexed stopping
//     cell in grid order, not the first found on the wall clock.
//
// Adding a workload is one spec plus one Register call; the registry
// (Lookup, Names, List) is what the tools' -list flag enumerates.
package exp

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	userdma "uldma/internal/core"
	"uldma/internal/par"
	"uldma/internal/sim"
	"uldma/internal/stats"
)

// Params are the knobs an experiment spec expands under. Scalar counts
// (Iters, Seeds, Slots, Msgs, ...) are taken as given — the cmd/ tools'
// flag defaults own their conventional values — while the grid axes
// (Freqs, Sizes, Methods) fall back to the canonical paper axes when
// nil, so a zero-value axis always means "the experiment as published".
type Params struct {
	Iters int // initiations per timing cell (the paper's loop: 1000)
	Procs int // worker goroutines for independent cells (<= 0 = GOMAXPROCS)

	Seeds       int  // campaign: seeded adversarial runs
	Slots       int  // exhaustive: attacker slots
	ShareA      bool // campaign: give the attacker read access to page A
	LooseStatus bool // campaign: paper's literal Figure 7 client

	Methods []userdma.Method // comparators: method-axis override (nil = canonical five)
	Freqs   []sim.Hz         // bussweep: frequency axis (nil = X4's 12.5/33/66 MHz)
	Sizes   []uint64         // breakeven/trend: size axis (nil = userdma.DefaultSizes)

	Msgs    int    // clustersim: messages per method
	MsgSize uint64 // clustersim: payload bytes
	ATM     bool   // clustersim: ATM-155 link preset instead of Gigabit
	Hist    bool   // clustersim: render per-method latency histograms

	Nodes      int      // scale: cluster size (0 = 32)
	Shards     int      // scale: partition width (0 = 4)
	Arrival    int      // scale: per-node RPC arrival rate, RPCs/s (0 = 20000)
	Tenants    int      // scale: arrival streams per node (0 = 2)
	ScaleBytes uint64   // scale: request payload bytes (0 = 64)
	ScaleDur   sim.Time // scale: arrival-window length (0 = 2ms)
	ScaleSeed  uint64   // scale: world seed (0 = 1)

	TLB int // vasweep: IOTLB entries for the hit-rate sweep (0 = 8)

	// Protocol selects the scalemachine initiation protocol: "kernel",
	// "extshadow", "keybased", "repeated", or ""/"all" for the full
	// NOW comparison line-up (one cell per protocol).
	Protocol string
}

func (p Params) freqs() []sim.Hz {
	if len(p.Freqs) == 0 {
		return DefaultFreqs()
	}
	return p.Freqs
}

func (p Params) sizes() []uint64 {
	if len(p.Sizes) == 0 {
		return userdma.DefaultSizes
	}
	return p.Sizes
}

// DefaultFreqs is experiment X4's bus-frequency axis.
func DefaultFreqs() []sim.Hz {
	return []sim.Hz{12_500_000, 33 * sim.MHz, 66 * sim.MHz}
}

// Obs is one cell's observation. Exactly the fields matching the
// experiment's kind are set; the Result views flatten them in cell
// order.
type Obs struct {
	Inits  []userdma.InitiationResult // timing cells (Table 1 style)
	Points []userdma.BreakEvenPoint   // break-even cells
	Attack *userdma.AttackOutcome     // adversarial cells
	Rows   []Row                      // microbenchmark rows (oslat, clustersim)
	Fault  []FaultPoint               // faultsweep cells
	Recov  []RecoveryPoint            // recovery cells
	Search []FaultSearchPoint         // faultsearch cells
	Scale  []ScalePoint               // scale cells (sharded NOW runs)
	ScaleM []ScaleMachinePoint        // scalemachine cells (hosted machine worlds)
	Ring   []userdma.RingDepthResult  // ringdepth cells (batched initiation)
	Churn  []userdma.RingChurnResult  // ringchurn cells (context oversubscription)
	VACmp  []userdma.VACompareRow     // vasweep cells (shadow vs IOMMU Table 1)
	IOTLB  []userdma.IOTLBPoint       // vasweep cells (IOTLB hit-rate sweep)
	Paging []userdma.PagingResult     // paging cells (recovery-policy grid)
}

// Row is one generic latency-table row produced by the OS and cluster
// microbenchmark cells.
type Row struct {
	Name string
	Mean sim.Time
	Init sim.Time      // clustersim: initiation component of Mean
	Hist *stats.Sample // clustersim: latency distribution (for -hist)
}

// Cell is one independent unit of an experiment: a fresh simulated
// world identified by its grid labels. Run builds and runs the world
// and returns its observation; stop = true marks a cell that ends a
// search sweep (e.g. a hijack found). Cells share no state, which is
// what lets the runner fan them out across host cores while keeping
// every world single-goroutine and bit-for-bit deterministic.
type Cell struct {
	Method string // method-axis label ("" when the axis is unused)
	Config string // config-axis label (frequency, era, link, ...)
	Size   uint64 // size-axis label
	Seed   uint64 // seed-axis label
	Run    func() (obs Obs, stop bool, err error)
}

// CellResult pairs a cell with its observation.
type CellResult struct {
	Cell Cell
	Obs  Obs
}

// Result is the single ordered result schema every experiment
// produces: one CellResult per expanded cell, in expansion order —
// deliberately a slice keyed by cell index, never a map, so rendering
// is deterministic byte for byte.
type Result struct {
	Name  string       // experiment name (registry key)
	Cells []CellResult // ordered by cell index
	// Tried is the number of cells with a known outcome: len(Cells)
	// for grid experiments, the stopping cell's index + 1 for search
	// experiments that stopped early.
	Tried int
	// Stopped points at the cell that ended a search sweep (nil when
	// the sweep ran to completion). It always aliases the last entry
	// of Cells.
	Stopped *CellResult
}

// Initiations flattens the timing observations in cell order.
func (r *Result) Initiations() []userdma.InitiationResult {
	var out []userdma.InitiationResult
	for _, c := range r.Cells {
		out = append(out, c.Obs.Inits...)
	}
	return out
}

// Points flattens the break-even observations in cell order.
func (r *Result) Points() []userdma.BreakEvenPoint {
	var out []userdma.BreakEvenPoint
	for _, c := range r.Cells {
		out = append(out, c.Obs.Points...)
	}
	return out
}

// Outcomes flattens the adversarial observations in cell order.
func (r *Result) Outcomes() []userdma.AttackOutcome {
	var out []userdma.AttackOutcome
	for _, c := range r.Cells {
		if c.Obs.Attack != nil {
			out = append(out, *c.Obs.Attack)
		}
	}
	return out
}

// Rows flattens the microbenchmark rows in cell order.
func (r *Result) Rows() []Row {
	var out []Row
	for _, c := range r.Cells {
		out = append(out, c.Obs.Rows...)
	}
	return out
}

// FaultPoints flattens the fault-sweep observations in cell order.
func (r *Result) FaultPoints() []FaultPoint {
	var out []FaultPoint
	for _, c := range r.Cells {
		out = append(out, c.Obs.Fault...)
	}
	return out
}

// RecoveryPoints flattens the recovery observations in cell order.
func (r *Result) RecoveryPoints() []RecoveryPoint {
	var out []RecoveryPoint
	for _, c := range r.Cells {
		out = append(out, c.Obs.Recov...)
	}
	return out
}

// ScalePoints flattens the scale observations in cell order.
func (r *Result) ScalePoints() []ScalePoint {
	var out []ScalePoint
	for _, c := range r.Cells {
		out = append(out, c.Obs.Scale...)
	}
	return out
}

// ScaleMachinePoints flattens the scalemachine observations in cell
// order.
func (r *Result) ScaleMachinePoints() []ScaleMachinePoint {
	var out []ScaleMachinePoint
	for _, c := range r.Cells {
		out = append(out, c.Obs.ScaleM...)
	}
	return out
}

// RingPoints flattens the ringdepth observations in cell order.
func (r *Result) RingPoints() []userdma.RingDepthResult {
	var out []userdma.RingDepthResult
	for _, c := range r.Cells {
		out = append(out, c.Obs.Ring...)
	}
	return out
}

// ChurnPoints flattens the ringchurn observations in cell order.
func (r *Result) ChurnPoints() []userdma.RingChurnResult {
	var out []userdma.RingChurnResult
	for _, c := range r.Cells {
		out = append(out, c.Obs.Churn...)
	}
	return out
}

// VAComparisons flattens the vasweep Table 1 observations in cell
// order.
func (r *Result) VAComparisons() []userdma.VACompareRow {
	var out []userdma.VACompareRow
	for _, c := range r.Cells {
		out = append(out, c.Obs.VACmp...)
	}
	return out
}

// IOTLBPoints flattens the vasweep IOTLB observations in cell order.
func (r *Result) IOTLBPoints() []userdma.IOTLBPoint {
	var out []userdma.IOTLBPoint
	for _, c := range r.Cells {
		out = append(out, c.Obs.IOTLB...)
	}
	return out
}

// PagingPoints flattens the paging observations in cell order.
func (r *Result) PagingPoints() []userdma.PagingResult {
	var out []userdma.PagingResult
	for _, c := range r.Cells {
		out = append(out, c.Obs.Paging...)
	}
	return out
}

// SearchPoints flattens the fault-search observations in cell order.
func (r *Result) SearchPoints() []FaultSearchPoint {
	var out []FaultSearchPoint
	for _, c := range r.Cells {
		out = append(out, c.Obs.Search...)
	}
	return out
}

// Format selects an output renderer.
type Format int

const (
	// Text is the fixed-width table style cmd/dmabench and cmd/oslat
	// print.
	Text Format = iota
	// Markdown is cmd/report's section style.
	Markdown
)

// RenderFunc turns an experiment's ordered result into one output
// section. Renderers are pure: same result + params, same bytes.
type RenderFunc func(*Result, Params) string

// Experiment is a declarative spec: a registry name, a one-line doc
// string (what -list prints), a pure cell expansion, and the renderers
// the spec supports. JSON output is composed from the typed row
// converters (InitRows, BreakEvenRows, TrendRows, ...) instead,
// because the tools emit ONE document combining several experiments.
type Experiment struct {
	Name   string
	Doc    string
	Cells  func(Params) ([]Cell, error)
	Render map[Format]RenderFunc
}

// errCellStop is the pool sentinel for "this cell ended the sweep"
// (search hit or cell error); par.Do guarantees every cell below the
// lowest stopping one still completes, which is exactly what the
// deterministic in-order merge needs.
var errCellStop = errors.New("exp: cell stop")

// Run expands the experiment's cells under p and executes them on
// p.Procs workers (<= 0 = GOMAXPROCS, 1 = plain serial loop). The
// merge is in cell order: on error it returns the partial ordered
// result up to and including the lowest-indexed failing cell together
// with that cell's error (so callers can still report how far the
// sweep got); on a search stop, Result.Stopped/Tried identify the
// lowest-indexed stopping cell in grid order regardless of worker
// scheduling.
func Run(e *Experiment, p Params) (*Result, error) {
	cells, err := e.Cells(p)
	if err != nil {
		return nil, err
	}
	type slot struct {
		obs  Obs
		stop bool
		err  error
	}
	slots := make([]slot, len(cells))
	// Job errors are demoted to the sentinel so par.Do prunes the tail
	// of the grid; the real errors are re-raised in cell order below.
	_ = par.Do(len(cells), p.Procs, func(i int) error {
		obs, stop, err := cells[i].Run()
		slots[i] = slot{obs: obs, stop: stop, err: err}
		if err != nil || stop {
			return errCellStop
		}
		return nil
	})
	res := &Result{Name: e.Name}
	for i := range cells {
		s := &slots[i]
		if s.err != nil {
			res.Tried = i + 1
			return res, s.err
		}
		res.Cells = append(res.Cells, CellResult{Cell: cells[i], Obs: s.obs})
		if s.stop {
			res.Tried = i + 1
			res.Stopped = &res.Cells[len(res.Cells)-1]
			return res, nil
		}
	}
	res.Tried = len(cells)
	return res, nil
}

// --- Registry ---

var registry = map[string]*Experiment{}

// Register adds an experiment to the registry. It panics on duplicate
// or empty names — specs register from init, so a clash is a
// programming error.
func Register(e *Experiment) {
	if e.Name == "" {
		panic("exp: Register with empty name")
	}
	if _, dup := registry[e.Name]; dup {
		panic("exp: duplicate experiment " + e.Name)
	}
	registry[e.Name] = e
}

// Lookup returns the named experiment.
func Lookup(name string) (*Experiment, bool) {
	e, ok := registry[name]
	return e, ok
}

// Names returns every registered experiment name, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// List renders the registry as the text every tool's -list flag
// prints.
func List() string {
	var b strings.Builder
	b.WriteString("experiments (one spec each; run on the shared cell runner):\n")
	w := 0
	for _, name := range Names() {
		if len(name) > w {
			w = len(name)
		}
	}
	for _, name := range Names() {
		fmt.Fprintf(&b, "  %-*s  %s\n", w, name, registry[name].Doc)
	}
	return b.String()
}

// RunNamed looks an experiment up and runs it.
func RunNamed(name string, p Params) (*Result, error) {
	e, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q (use -list)", name)
	}
	return Run(e, p)
}

// RenderNamed renders an already-run result in the requested format.
func RenderNamed(name string, f Format, r *Result, p Params) (string, error) {
	e, ok := Lookup(name)
	if !ok {
		return "", fmt.Errorf("exp: unknown experiment %q (use -list)", name)
	}
	fn, ok := e.Render[f]
	if !ok {
		return "", fmt.Errorf("exp: experiment %q has no renderer for format %d", name, f)
	}
	return fn(r, p), nil
}

// Report runs the named experiment and renders it — the one-call path
// the thin cmd/ frontends use for their text and markdown sections.
func Report(name string, f Format, p Params) (string, error) {
	r, err := RunNamed(name, p)
	if err != nil {
		return "", err
	}
	return RenderNamed(name, f, r, p)
}
