package exp

// Experiment X7: the hardware-generation trend behind the paper's §1
// motivation. The grid flattens, per era, two initiation measurements
// plus one break-even cell per size — the same cell layout (and
// therefore the same error order) as the serial sweep.

import (
	"fmt"
	"strings"

	userdma "uldma/internal/core"
	"uldma/internal/dma"
	"uldma/internal/stats"
)

func init() {
	Register(&Experiment{
		Name:  "trend",
		Doc:   "X7 — kernel vs user-level initiation across 1994/1997/2000 hardware generations",
		Cells: trendCells,
		Render: map[Format]RenderFunc{
			Text:     trendText,
			Markdown: trendMarkdown,
		},
	})
}

// trendPerEra is the cell count per era: kernel initiation, user
// initiation, then one break-even cell per size.
func trendPerEra(p Params) int { return 2 + len(p.sizes()) }

func trendCells(p Params) ([]Cell, error) {
	eras := userdma.TrendEras()
	sizes := p.sizes()
	perEra := trendPerEra(p)
	cells := make([]Cell, len(eras)*perEra)
	for i := range cells {
		i := i
		era := eras[i/perEra]
		switch k := i % perEra; k {
		case 0:
			cells[i] = Cell{Config: era.Name, Method: (userdma.KernelLevel{}).Name(), Run: func() (Obs, bool, error) {
				r, err := userdma.MeasureMethod(userdma.KernelLevel{}, era.Config(dma.ModePaired, 0), p.Iters)
				if err != nil {
					return Obs{}, false, fmt.Errorf("%s/kernel: %w", era.Name, err)
				}
				return Obs{Inits: []userdma.InitiationResult{r}}, false, nil
			}}
		case 1:
			cells[i] = Cell{Config: era.Name, Method: (userdma.ExtShadow{}).Name(), Run: func() (Obs, bool, error) {
				r, err := userdma.MeasureMethod(userdma.ExtShadow{}, era.Config(dma.ModeExtended, 0), p.Iters)
				if err != nil {
					return Obs{}, false, fmt.Errorf("%s/user: %w", era.Name, err)
				}
				return Obs{Inits: []userdma.InitiationResult{r}}, false, nil
			}}
		default:
			size := sizes[k-2]
			cells[i] = Cell{Config: era.Name, Method: (userdma.KernelLevel{}).Name(), Size: size, Run: func() (Obs, bool, error) {
				pt, err := userdma.BreakEvenCell(userdma.KernelLevel{}, era.Config(dma.ModePaired, 0), size)
				if err != nil {
					return Obs{}, false, err
				}
				return Obs{Points: []userdma.BreakEvenPoint{pt}}, false, nil
			}}
		}
	}
	return cells, nil
}

// TrendPoints folds an ordered trend result into one point per era.
func TrendPoints(r *Result, p Params) []userdma.TrendPoint {
	sizes := p.sizes()
	perEra := trendPerEra(p)
	var out []userdma.TrendPoint
	for base := 0; base+perEra <= len(r.Cells); base += perEra {
		pts := make([]userdma.BreakEvenPoint, len(sizes))
		for s := range sizes {
			pts[s] = r.Cells[base+2+s].Obs.Points[0]
		}
		cross, _ := userdma.Crossover(pts)
		out = append(out, userdma.TrendPoint{
			Era:             r.Cells[base].Cell.Config,
			KernelInit:      r.Cells[base].Obs.Inits[0].Mean,
			UserInit:        r.Cells[base+1].Obs.Inits[0].Mean,
			KernelCrossover: cross,
		})
	}
	return out
}

// TrendSweep runs the "trend" experiment over the canonical size axis.
func TrendSweep(iters, procs int) ([]userdma.TrendPoint, error) {
	p := Params{Iters: iters, Procs: procs}
	r, err := RunNamed("trend", p)
	if err != nil {
		return nil, err
	}
	return TrendPoints(r, p), nil
}

func trendText(r *Result, p Params) string {
	var b strings.Builder
	b.WriteString("Hardware-generation trend (X7) — the motivating §1/§2.2 argument\n")
	tb := stats.NewTable("era", "kernel init", "ext-shadow init", "ratio", "kernel break-even")
	for _, pt := range TrendPoints(r, p) {
		tb.AddRow(pt.Era, pt.KernelInit, pt.UserInit,
			stats.Ratio(pt.KernelInit, pt.UserInit),
			fmt.Sprintf("%dB", pt.KernelCrossover))
	}
	b.WriteString(tb.String())
	b.WriteByte('\n')
	b.WriteString("Processors and buses speed up; the trap's cycle count grows — so the\n")
	b.WriteString("kernel path's break-even keeps receding while user-level initiation\n")
	b.WriteString("rides the hardware. Exactly the trend the paper opens with.\n")
	b.WriteByte('\n')
	return b.String()
}

func trendMarkdown(r *Result, p Params) string {
	var b strings.Builder
	b.WriteString("\n## X7 — hardware-generation trend (the §1 motivation)\n")
	b.WriteString("\n| era | kernel init | ext-shadow init | ratio | kernel break-even |\n")
	b.WriteString("|---|---|---|---|---|\n")
	for _, pt := range TrendPoints(r, p) {
		fmt.Fprintf(&b, "| %s | %v | %v | %.0fx | %dB |\n", pt.Era, pt.KernelInit, pt.UserInit,
			float64(pt.KernelInit)/float64(pt.UserInit), pt.KernelCrossover)
	}
	return b.String()
}
