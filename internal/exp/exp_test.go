package exp

// Unit tests of the generic runner's determinism contract: cell-order
// errors, search-stop semantics, partial results, and the registry.

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// gridExperiment builds a synthetic n-cell experiment whose cells
// record their observation index and consult fail/stop maps.
func gridExperiment(n int, fail map[int]error, stop map[int]bool, ran *int64) *Experiment {
	return &Experiment{
		Name: "synthetic",
		Cells: func(Params) ([]Cell, error) {
			cells := make([]Cell, n)
			for i := range cells {
				i := i
				cells[i] = Cell{Seed: uint64(i), Run: func() (Obs, bool, error) {
					if ran != nil {
						atomic.AddInt64(ran, 1)
					}
					if err := fail[i]; err != nil {
						return Obs{}, false, err
					}
					return Obs{Rows: []Row{{Name: fmt.Sprintf("cell%d", i)}}}, stop[i], nil
				}}
			}
			return cells, nil
		},
	}
}

func TestRunOrdersResults(t *testing.T) {
	for _, procs := range []int{1, 3, 8} {
		r, err := Run(gridExperiment(17, nil, nil, nil), Params{Procs: procs})
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if r.Tried != 17 || len(r.Cells) != 17 || r.Stopped != nil {
			t.Fatalf("procs=%d: Tried=%d len=%d Stopped=%v", procs, r.Tried, len(r.Cells), r.Stopped)
		}
		for i, row := range r.Rows() {
			if want := fmt.Sprintf("cell%d", i); row.Name != want {
				t.Fatalf("procs=%d: row %d is %q, want %q", procs, i, row.Name, want)
			}
		}
	}
}

func TestRunReportsLowestIndexedError(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	for _, procs := range []int{1, 2, 8} {
		r, err := Run(gridExperiment(12, map[int]error{3: errLow, 9: errHigh}, nil, nil),
			Params{Procs: procs})
		if !errors.Is(err, errLow) {
			t.Fatalf("procs=%d: got error %v, want the lowest-indexed cell's (%v)", procs, err, errLow)
		}
		if r == nil || r.Tried != 4 {
			t.Fatalf("procs=%d: partial result Tried=%v, want 4 (cells 0..3 decided)", procs, r)
		}
		if len(r.Cells) != 3 {
			t.Fatalf("procs=%d: %d completed cells before the failure, want 3", procs, len(r.Cells))
		}
	}
}

func TestRunStopsAtLowestIndexedStop(t *testing.T) {
	for _, procs := range []int{1, 2, 8} {
		var ran int64
		r, err := Run(gridExperiment(40, nil, map[int]bool{7: true, 11: true}, &ran),
			Params{Procs: procs})
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if r.Tried != 8 {
			t.Fatalf("procs=%d: Tried=%d, want 8 (stop at cell 7 in grid order)", procs, r.Tried)
		}
		if r.Stopped == nil || r.Stopped.Cell.Seed != 7 {
			t.Fatalf("procs=%d: Stopped=%+v, want the cell with seed 7", procs, r.Stopped)
		}
		if r.Stopped != &r.Cells[len(r.Cells)-1] {
			t.Fatalf("procs=%d: Stopped must alias the last merged cell", procs)
		}
		// Workers may race ahead of the stopping cell, but the runner
		// must never leave a lower-indexed cell unfinished.
		if ran < 8 {
			t.Fatalf("procs=%d: only %d cells ran; every cell below the stop must complete", procs, ran)
		}
	}
}

func TestRunCellExpansionError(t *testing.T) {
	boom := errors.New("boom")
	e := &Experiment{Name: "bad", Cells: func(Params) ([]Cell, error) { return nil, boom }}
	if _, err := Run(e, Params{}); !errors.Is(err, boom) {
		t.Fatalf("got %v, want the expansion error", err)
	}
}

func TestRegistry(t *testing.T) {
	// Every spec the tools depend on is registered.
	for _, name := range []string{
		"table1", "comparators", "contention", "bussweep", "breakeven",
		"trend", "exhaustive", "campaign", "oslat", "clustersim",
	} {
		if _, ok := Lookup(name); !ok {
			t.Errorf("experiment %q not registered", name)
		}
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %q >= %q", names[i-1], names[i])
		}
	}
	list := List()
	for _, name := range names {
		if !strings.Contains(list, name) {
			t.Errorf("List() does not mention %q", name)
		}
	}
	if _, err := RunNamed("no-such-experiment", Params{}); err == nil {
		t.Error("RunNamed on an unknown name must fail")
	}
	if _, err := Report("exhaustive", Text, Params{Slots: 1}); err == nil {
		t.Error("Report must fail for an experiment without the requested renderer")
	}
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, e *Experiment) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		Register(e)
	}
	mustPanic("empty name", &Experiment{})
	mustPanic("duplicate", &Experiment{Name: "table1"})
}
