package exp

// Parity and render-determinism for the virtual-address DMA
// experiments: every cell is its own world, so vasweep and paging must
// produce byte-identical results at any worker count, and their
// renderers must be pure.

import (
	"reflect"
	"strings"
	"testing"
)

func TestVASweepParity(t *testing.T) {
	const iters = 50
	wantCmp, wantTLB, err := VASweep(iters, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantCmp) != 4 {
		t.Fatalf("vasweep produced %d Table 1 rows, want 4", len(wantCmp))
	}
	if len(wantTLB) != len(VASweepPages()) {
		t.Fatalf("vasweep produced %d IOTLB points, want %d", len(wantTLB), len(VASweepPages()))
	}
	for _, w := range []int{2, 4} {
		cmp, tlb, err := VASweep(iters, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(cmp, wantCmp) {
			t.Errorf("workers=%d: Table 1 comparison diverged", w)
		}
		if !reflect.DeepEqual(tlb, wantTLB) {
			t.Errorf("workers=%d: IOTLB sweep diverged", w)
		}
	}
}

func TestPagingParity(t *testing.T) {
	want, err := Paging(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(PagingPolicies()) * len(PagingPages()); len(want) != got {
		t.Fatalf("paging produced %d cells, want %d", len(want), got)
	}
	for _, w := range []int{3, 8} {
		got, err := Paging(w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: paging grid diverged from serial run", w)
		}
	}
}

func TestVARendersDeterministic(t *testing.T) {
	for _, name := range []string{"vasweep", "paging"} {
		p := Params{Iters: 30, Procs: 4}
		r, err := RunNamed(name, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, f := range []Format{Text, Markdown} {
			a, err := RenderNamed(name, f, r, p)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			b, err := RenderNamed(name, f, r, p)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if a != b {
				t.Errorf("%s format %d: renderer is not pure", name, f)
			}
			if a == "" {
				t.Errorf("%s format %d: empty render", name, f)
			}
		}
		// JSON rows flatten without loss.
		switch name {
		case "vasweep":
			if len(VARows(r)) != 4 || len(IOTLBRows(r)) != len(VASweepPages()) {
				t.Errorf("vasweep wire rows incomplete: %d cmp, %d iotlb",
					len(VARows(r)), len(IOTLBRows(r)))
			}
			for _, row := range IOTLBRows(r) {
				if len(row.Fingerprint) != 16 {
					t.Errorf("IOTLB fingerprint %q not 16 hex digits", row.Fingerprint)
				}
			}
		case "paging":
			rows := PagingRows(r)
			if len(rows) != len(PagingPolicies())*len(PagingPages()) {
				t.Errorf("paging wire rows incomplete: %d", len(rows))
			}
			for _, row := range rows {
				if len(row.Fingerprint) != 16 {
					t.Errorf("paging fingerprint %q not 16 hex digits", row.Fingerprint)
				}
			}
		}
	}
}

func TestVAListed(t *testing.T) {
	list := List()
	for _, name := range []string{"vasweep", "paging"} {
		if _, ok := Lookup(name); !ok {
			t.Errorf("experiment %q not registered", name)
		}
		if !strings.Contains(list, name) {
			t.Errorf("-list output omits %q", name)
		}
	}
}
