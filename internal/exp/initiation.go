package exp

// The initiation-time experiments: Table 1 (the paper's headline
// comparison), the comparator line-up, and the §3.2 register-context
// contention study. Each is a thin declarative spec over
// userdma.MeasureMethod / userdma.ContextContention; the shared runner
// does the fan-out.

import (
	"fmt"
	"strings"

	userdma "uldma/internal/core"
	"uldma/internal/machine"
	"uldma/internal/stats"
)

func init() {
	Register(&Experiment{
		Name:  "table1",
		Doc:   "Table 1 — DMA initiation time for the paper's four methods (§3.4)",
		Cells: table1Cells,
		Render: map[Format]RenderFunc{
			Text:     table1Text,
			Markdown: table1Markdown,
		},
	})
	Register(&Experiment{
		Name:  "comparators",
		Doc:   "comparator methods (PAL, SHRIMP, FLASH, no-context shadow) on the same model",
		Cells: comparatorCells,
		Render: map[Format]RenderFunc{
			Text:     comparatorsText,
			Markdown: comparatorsMarkdown,
		},
	})
	Register(&Experiment{
		Name:  "contention",
		Doc:   "§3.2 register-context contention: 6 processes share 4 extended-shadow contexts",
		Cells: contentionCells,
		Render: map[Format]RenderFunc{
			Text:     contentionText,
			Markdown: contentionMarkdown,
		},
	})
}

// MachineName is the calibrated preset's display name, used by every
// renderer and JSON document header.
func MachineName() string { return machine.Alpha3000TC(0, 0).Name }

func table1Cells(p Params) ([]Cell, error) {
	methods := userdma.Methods()
	cells := make([]Cell, len(methods))
	for i, method := range methods {
		method := method
		cells[i] = Cell{Method: method.Name(), Run: func() (Obs, bool, error) {
			r, err := userdma.MeasureMethod(method, userdma.ConfigFor(method), p.Iters)
			if err != nil {
				return Obs{}, false, fmt.Errorf("%s: %w", method.Name(), err)
			}
			return Obs{Inits: []userdma.InitiationResult{r}}, false, nil
		}}
	}
	return cells, nil
}

// Table1 runs the "table1" experiment: the paper's four rows in row
// order, measured on p.Procs workers, byte-identical for any worker
// count.
func Table1(iters, procs int) ([]userdma.InitiationResult, error) {
	r, err := RunNamed("table1", Params{Iters: iters, Procs: procs})
	if err != nil {
		return nil, err
	}
	return r.Initiations(), nil
}

func table1Text(r *Result, p Params) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 — DMA initiation time (%d initiations/method)\n", p.Iters)
	fmt.Fprintf(&b, "machine: %s\n\n", MachineName())
	tb := stats.NewTable("DMA algorithm", "paper (µs)", "measured (µs)", "delta", "min", "max")
	for _, res := range r.Initiations() {
		tb.AddRow(res.Method,
			fmt.Sprintf("%.1f", res.PaperMean.Microseconds()),
			fmt.Sprintf("%.2f", res.Mean.Microseconds()),
			stats.DeltaPercent(res.Mean, res.PaperMean),
			res.Min, res.Max)
	}
	b.WriteString(tb.String())
	b.WriteByte('\n')
	return b.String()
}

func table1Markdown(r *Result, _ Params) string {
	var b strings.Builder
	b.WriteString("\n## T1 — Table 1: DMA initiation time\n")
	b.WriteString("\n| DMA algorithm | paper (µs) | measured (µs) | delta |\n")
	b.WriteString("|---|---|---|---|\n")
	for _, res := range r.Initiations() {
		fmt.Fprintf(&b, "| %s | %.1f | %.2f | %+.1f%% |\n", res.Method,
			res.PaperMean.Microseconds(), res.Mean.Microseconds(),
			100*(float64(res.Mean)-float64(res.PaperMean))/float64(res.PaperMean))
	}
	return b.String()
}

// ComparatorMethods is the canonical comparator line-up: the methods
// measured on the same model but absent from Table 1. The first four
// are the published comparators; the fifth is the extended-shadow
// variant without register contexts.
func ComparatorMethods() []userdma.Method {
	return []userdma.Method{
		userdma.PALCode{}, userdma.SHRIMP1{},
		userdma.SHRIMP2{WithKernelMod: true}, userdma.FLASH{},
		userdma.ExtShadow{NoContexts: true},
	}
}

func (p Params) comparators() []userdma.Method {
	if len(p.Methods) == 0 {
		return ComparatorMethods()
	}
	return p.Methods
}

func comparatorCells(p Params) ([]Cell, error) {
	methods := p.comparators()
	cells := make([]Cell, len(methods))
	for i, method := range methods {
		method := method
		cells[i] = Cell{Method: method.Name(), Run: func() (Obs, bool, error) {
			r, err := userdma.MeasureMethod(method, userdma.ConfigFor(method), p.Iters)
			if err != nil {
				return Obs{}, false, err
			}
			return Obs{Inits: []userdma.InitiationResult{r}}, false, nil
		}}
	}
	return cells, nil
}

// Comparators runs the "comparators" experiment over the given method
// axis (nil = ComparatorMethods).
func Comparators(iters, procs int, methods []userdma.Method) ([]userdma.InitiationResult, error) {
	r, err := RunNamed("comparators", Params{Iters: iters, Procs: procs, Methods: methods})
	if err != nil {
		return nil, err
	}
	return r.Initiations(), nil
}

func comparatorsText(r *Result, p Params) string {
	var b strings.Builder
	b.WriteString("Comparators (not in Table 1; measured on the same model)\n")
	tb := stats.NewTable("method", "measured (µs)", "kernel mod?")
	results := r.Initiations()
	for i, m := range p.comparators() {
		tb.AddRow(m.Name(), fmt.Sprintf("%.2f", results[i].Mean.Microseconds()), m.RequiresKernelMod())
	}
	b.WriteString(tb.String())
	b.WriteByte('\n')
	return b.String()
}

func comparatorsMarkdown(r *Result, p Params) string {
	var b strings.Builder
	b.WriteString("\n## Comparators (no Table 1 reference)\n")
	b.WriteString("\n| method | measured (µs) | kernel mod? |\n")
	b.WriteString("|---|---|---|\n")
	results := r.Initiations()
	for i, m := range p.comparators() {
		fmt.Fprintf(&b, "| %s | %.2f | %v |\n", m.Name(), results[i].Mean.Microseconds(), m.RequiresKernelMod())
	}
	return b.String()
}

func contentionCells(p Params) ([]Cell, error) {
	// One cell: the six processes share ONE machine (the contention
	// under study is within a world, not between worlds), so the
	// single-goroutine-per-world rule makes this experiment inherently
	// serial — it still rides the same runner and result schema.
	return []Cell{{
		Method: (userdma.ExtShadow{}).Name(),
		Config: "6 procs / 4 contexts",
		Run: func() (Obs, bool, error) {
			rs, err := userdma.ContextContention(userdma.ExtShadow{}, 6, p.Iters/10+1)
			if err != nil {
				return Obs{}, false, err
			}
			return Obs{Inits: rs}, false, nil
		},
	}}, nil
}

// Contention runs the "contention" experiment (iters is the tools'
// -iters value; the study uses iters/10+1 initiations per process, as
// the tools always have).
func Contention(iters, procs int) ([]userdma.InitiationResult, error) {
	r, err := RunNamed("contention", Params{Iters: iters, Procs: procs})
	if err != nil {
		return nil, err
	}
	return r.Initiations(), nil
}

func contentionText(r *Result, _ Params) string {
	var b strings.Builder
	b.WriteString("Register-context contention — 6 processes, 4 extended-shadow contexts\n")
	tb := stats.NewTable("process path", "mean (µs)")
	for _, res := range r.Initiations() {
		tb.AddRow(res.Method, fmt.Sprintf("%.2f", res.Mean.Microseconds()))
	}
	b.WriteString(tb.String())
	b.WriteByte('\n')
	return b.String()
}

func contentionMarkdown(r *Result, _ Params) string {
	var b strings.Builder
	b.WriteString("\n## §3.2 — register-context contention (6 processes, 4 contexts)\n")
	b.WriteString("\n| process path | mean (µs) |\n")
	b.WriteString("|---|---|\n")
	for _, res := range r.Initiations() {
		fmt.Fprintf(&b, "| %s | %.2f |\n", res.Method, res.Mean.Microseconds())
	}
	return b.String()
}
