package exp

import (
	"reflect"
	"strings"
	"testing"
)

// faultParityWorkers is deliberately {1, 4, 8}: serial as the
// reference, then two parallel fan-outs. Under -race (CI) this also
// proves the per-cell worlds share no state.
var faultParityWorkers = []int{1, 4, 8}

// TestFaultSweepParityAcrossWorkers pins the fault plane's determinism
// contract end to end: the full faultsweep — per-message latencies,
// goodput, retransmit counters AND the fabric's fault statistics —
// is byte-identical for any worker count. Fabric.Stats() is part of
// the compared rows, so a single drop/dup/reorder verdict landing
// differently under parallel cell execution fails the test.
func TestFaultSweepParityAcrossWorkers(t *testing.T) {
	p := Params{Msgs: 8}
	var want []FaultRow
	for _, w := range faultParityWorkers {
		p.Procs = w
		r, err := RunNamed("faultsweep", p)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		rows := FaultRows(r)
		if len(rows) != len(FaultDrops())*len(FaultSizes()) {
			t.Fatalf("workers=%d: %d rows", w, len(rows))
		}
		if want == nil {
			want = rows
			continue
		}
		if !reflect.DeepEqual(rows, want) {
			t.Errorf("workers=%d: faultsweep diverged from serial run\n got %+v\nwant %+v", w, rows, want)
		}
	}
	// The control rows really are controls, and the lossy rows really
	// paid for recovery.
	for _, row := range want {
		if row.Drop == 0 && (row.Retransmits != 0 || row.Dropped != 0) {
			t.Errorf("control row %s paid recovery traffic: %+v", row.Label, row)
		}
		if row.Drop >= 0.2 && row.Retransmits == 0 {
			t.Errorf("lossy row %s never retransmitted: %+v", row.Label, row)
		}
	}
}

func TestRecoveryParityAcrossWorkers(t *testing.T) {
	p := Params{Msgs: 16}
	var want []RecoveryRow
	for _, w := range faultParityWorkers {
		p.Procs = w
		r, err := RunNamed("recovery", p)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		rows := RecoveryRows(r)
		if want == nil {
			want = rows
			continue
		}
		if !reflect.DeepEqual(rows, want) {
			t.Errorf("workers=%d: recovery diverged from serial run\n got %+v\nwant %+v", w, rows, want)
		}
	}
	for _, row := range want {
		if row.Retransmits == 0 {
			t.Errorf("outage %s forced no retransmissions: %+v", row.Label, row)
		}
	}
}

// TestFaultSearchHoldsAndIsParallelSafe: the bounded interleaving ×
// fault-plan hunt finds no delivery violation, with identical verdicts
// (and schedule counts) for any worker count.
func TestFaultSearchHoldsAndIsParallelSafe(t *testing.T) {
	p := Params{Seeds: 3, Slots: 3}
	var want []FaultSearchRow
	for _, w := range faultParityWorkers {
		p.Procs = w
		r, err := RunNamed("faultsearch", p)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if r.Stopped != nil {
			t.Fatalf("workers=%d: delivery violation: %+v", w, r.Stopped.Obs.Search)
		}
		rows := FaultSearchRows(r)
		for _, row := range rows {
			if row.Schedules == 0 {
				t.Fatalf("workers=%d: seed %d explored nothing", w, row.Seed)
			}
		}
		if want == nil {
			want = rows
			continue
		}
		if !reflect.DeepEqual(rows, want) {
			t.Errorf("workers=%d: faultsearch diverged\n got %+v\nwant %+v", w, rows, want)
		}
	}
}

// TestFaultRendersDeterministic: rendering the same result twice, and a
// re-run once more, produces identical bytes in both formats.
func TestFaultRendersDeterministic(t *testing.T) {
	for _, name := range []string{"faultsweep", "recovery"} {
		p := Params{Msgs: 6, Procs: 4}
		r, err := RunNamed(name, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range []Format{Text, Markdown} {
			a, err := RenderNamed(name, f, r, p)
			if err != nil {
				t.Fatal(err)
			}
			b, err := RenderNamed(name, f, r, p)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("%s format %d: double render differed", name, f)
			}
			r2, err := RunNamed(name, p)
			if err != nil {
				t.Fatal(err)
			}
			c, err := RenderNamed(name, f, r2, p)
			if err != nil {
				t.Fatal(err)
			}
			if a != c {
				t.Fatalf("%s format %d: re-run changed the rendered bytes", name, f)
			}
			if !strings.Contains(a, "|") && f == Markdown {
				t.Fatalf("%s markdown render has no table", name)
			}
		}
	}
}
