package exp

// The paper's motivating workload — NOW message passing — as an
// experiment: one cell per initiation method, each a fresh two-node
// cluster world, reporting per-message latency and the initiation
// share that makes OS-initiated DMA stop making sense as links get
// faster (§1, §2.2).

import (
	"fmt"
	"strings"

	userdma "uldma/internal/core"
	"uldma/internal/dma"
	"uldma/internal/net"
	"uldma/internal/phys"
	"uldma/internal/proc"
	"uldma/internal/sim"
	"uldma/internal/stats"
	"uldma/internal/vm"
)

func init() {
	Register(&Experiment{
		Name:  "clustersim",
		Doc:   "NOW message passing: 2 workstations, per-message latency per initiation method",
		Cells: clusterCells,
		Render: map[Format]RenderFunc{
			Text: clusterText,
		},
	})
}

// ClusterMethods is the NOW comparison's method axis.
func ClusterMethods() []userdma.Method {
	return []userdma.Method{
		userdma.KernelLevel{},
		userdma.ExtShadow{},
		userdma.KeyBased{},
		userdma.RepeatedPassing{Len: 5, Barriers: true},
	}
}

// clusterLink resolves the link preset the params select.
func clusterLink(p Params) (net.LinkConfig, string) {
	if p.ATM {
		return net.ATM155(), "ATM-155"
	}
	return net.Gigabit(), "Gigabit"
}

func clusterCells(p Params) ([]Cell, error) {
	link, linkName := clusterLink(p)
	methods := ClusterMethods()
	cells := make([]Cell, len(methods))
	for i, method := range methods {
		method := method
		cells[i] = Cell{Method: method.Name(), Config: linkName, Run: func() (Obs, bool, error) {
			lat, initCost, sample, err := oneWayLatency(method, link, p.Msgs, p.MsgSize)
			if err != nil {
				return Obs{}, false, fmt.Errorf("%s: %w", method.Name(), err)
			}
			return Obs{Rows: []Row{{Name: method.Name(), Mean: lat, Init: initCost, Hist: sample}}}, false, nil
		}}
	}
	return cells, nil
}

func clusterText(r *Result, p Params) string {
	_, linkName := clusterLink(p)
	var b strings.Builder
	fmt.Fprintf(&b, "NOW message passing — 2 workstations, %s link, %d×%dB messages\n\n",
		linkName, p.Msgs, p.MsgSize)
	tb := stats.NewTable("initiation method", "msg latency", "initiation", "init share")
	rows := r.Rows()
	for _, row := range rows {
		tb.AddRow(row.Name, row.Mean, row.Init,
			fmt.Sprintf("%.0f%%", 100*float64(row.Init)/float64(row.Mean)))
	}
	b.WriteString(tb.String())
	b.WriteByte('\n')
	if p.Hist {
		for _, row := range rows {
			fmt.Fprintf(&b, "latency distribution — %s:\n%s\n", row.Name, row.Hist.Histogram(8))
		}
	}
	b.WriteString("init share = fraction of one-way latency spent starting the DMA.\n")
	b.WriteString("The faster the link, the more the kernel trap dominates — the paper's thesis.\n")
	return b.String()
}

// oneWayLatency measures mean send-to-receive latency: sender DMAs the
// payload into the receiver's mailbox and remote-writes a sequence flag;
// the receiver polls the flag.
func oneWayLatency(method userdma.Method, link net.LinkConfig, msgs int, size uint64) (lat, initCost sim.Time, latencies *stats.Sample, err error) {
	cfg := userdma.ConfigFor(method)
	cluster, err := net.NewCluster(2, cfg, link)
	if err != nil {
		return 0, 0, nil, err
	}
	n0, n1 := cluster.Nodes[0], cluster.Nodes[1]

	const (
		srcVA    = vm.VAddr(0x10000) // sender payload page
		remVA    = vm.VAddr(0x20000) // sender's window into the receiver
		boxVA    = vm.VAddr(0x30000) // receiver's local mailbox
		mailbox  = phys.Addr(0x80000)
		flagSlot = 8160 // flag word near the end of the mailbox page
	)

	var sendTimes []sim.Time
	var initSample, latSample stats.Sample

	var h *userdma.Handle
	sender := n0.NewProcess("sender", func(c *proc.Context) error {
		for i := 0; i < msgs; i++ {
			start := n0.Clock.Now()
			st, err := h.DMA(c, srcVA, remVA, size)
			if err != nil {
				return err
			}
			if st == dma.StatusFailure {
				return fmt.Errorf("message %d refused", i)
			}
			initSample.Add(n0.Clock.Now() - start)
			sendTimes = append(sendTimes, start)
			// Doorbell: remote-write the sequence number after the data.
			if err := c.Store(remVA+flagSlot, phys.Size64, uint64(i+1)); err != nil {
				return err
			}
			if err := c.MB(); err != nil {
				return err
			}
			// Pace the sender so messages do not pile up in flight.
			for n0.Clock.Now() < start+200*sim.Microsecond {
				c.Spin(2000)
			}
		}
		return nil
	})

	receiver := n1.NewProcess("receiver", func(c *proc.Context) error {
		for i := 0; i < msgs; i++ {
			for {
				v, err := c.Load(boxVA+flagSlot, phys.Size64)
				if err != nil {
					return err
				}
				if v >= uint64(i+1) {
					break
				}
				c.Spin(500)
			}
			latSample.Add(n1.Clock.Now() - sendTimes[i])
		}
		return nil
	})

	// Sender setup. Attach first: context-carrying methods burn their
	// context id into the shadow mappings created below.
	h, err = method.Attach(n0, sender)
	if err != nil {
		return 0, 0, nil, err
	}
	frames, err := n0.SetupPages(sender, srcVA, 1, vm.Read|vm.Write)
	if err != nil {
		return 0, 0, nil, err
	}
	n0.Mem.Fill(frames[0], int(size), 0xab)
	if err := n0.Kernel.MapRemote(sender, remVA, 1, mailbox); err != nil {
		return 0, 0, nil, err
	}
	if err := n0.Kernel.MapShadow(sender, remVA); err != nil {
		return 0, 0, nil, err
	}
	if s1, ok := method.(userdma.SHRIMP1); ok {
		if err := s1.MapOutPage(n0, sender, srcVA, n0.Engine.Config().RemoteAddr(1, mailbox)); err != nil {
			return 0, 0, nil, err
		}
	}
	// Receiver setup: read-only view of its mailbox page.
	if err := n1.Kernel.MapFrame(receiver.AddressSpace(), boxVA, mailbox, vm.Read); err != nil {
		return 0, 0, nil, err
	}

	if err := cluster.RunRoundRobin(8, 1<<30); err != nil {
		return 0, 0, nil, err
	}
	if sender.Err() != nil {
		return 0, 0, nil, fmt.Errorf("sender: %w", sender.Err())
	}
	if receiver.Err() != nil {
		return 0, 0, nil, fmt.Errorf("receiver: %w", receiver.Err())
	}
	return latSample.Mean(), initSample.Mean(), &latSample, nil
}
