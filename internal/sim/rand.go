package sim

// Rand is a small, fast, deterministic pseudo-random source (SplitMix64).
// The simulator uses it for seeded preemption schedules and for minting
// DMA protection keys. We deliberately avoid math/rand so that a seed
// pins the exact stream across Go releases — experiment scripts record
// seeds, and replaying a seed must replay the run.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. Two generators with the
// same seed produce identical streams.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform pseudo-random int in [0, n). n must be > 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection-free variant is overkill here;
	// simple modulo bias is ~2^-50 for the n values we use (< 2^14).
	return int(r.Uint64() % uint64(n))
}

// Bool returns a pseudo-random boolean.
func (r *Rand) Bool() bool { return r.Uint64()&1 == 1 }

// State returns the generator's internal state so a snapshot can pin
// the exact position in the stream. Restoring with SetState replays the
// identical remaining sequence.
func (r *Rand) State() uint64 { return r.state }

// SetState overwrites the generator's internal state. Used by world
// snapshot/restore; pair with State.
func (r *Rand) SetState(s uint64) { r.state = s }

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
