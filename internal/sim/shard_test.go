package sim

import "testing"

func TestStepFiresEarliestOnly(t *testing.T) {
	q := NewEventQueue()
	var got []Time
	q.ScheduleFunc(30, func(now Time) { got = append(got, now) })
	q.ScheduleFunc(10, func(now Time) { got = append(got, now) })
	q.ScheduleFunc(20, func(now Time) { got = append(got, now) })

	at, ok := q.Step()
	if !ok || at != 10 {
		t.Fatalf("Step() = %v, %v; want 10, true", at, ok)
	}
	if len(got) != 1 || got[0] != 10 {
		t.Fatalf("fired %v, want [10]", got)
	}
	if q.Len() != 2 {
		t.Fatalf("Len() = %d after one step, want 2", q.Len())
	}
	q.Step()
	q.Step()
	if at, ok := q.Step(); ok || at != Never {
		t.Fatalf("Step() on empty queue = %v, %v; want Never, false", at, ok)
	}
	if want := []Time{10, 20, 30}; len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("fire order %v, want %v", got, want)
	}
}

func TestShardRunWindow(t *testing.T) {
	s := NewShard(3, 8)
	if s.ID != 3 {
		t.Fatalf("ID = %d, want 3", s.ID)
	}
	var fired []Time
	record := func(now Time) { fired = append(fired, now) }
	s.Events.ScheduleFunc(5, record)
	s.Events.ScheduleFunc(10, func(now Time) {
		record(now)
		// Cascades inside the window are honoured.
		s.Events.ScheduleFunc(now+2, record)
	})
	s.Events.ScheduleFunc(40, record)

	if n := s.RunWindow(20); n != 3 {
		t.Fatalf("RunWindow(20) fired %d events, want 3", n)
	}
	if s.Clock.Now() != 12 {
		t.Fatalf("clock at %v after window, want 12 (last fired event)", s.Clock.Now())
	}
	if s.Fired != 3 {
		t.Fatalf("Fired = %d, want 3", s.Fired)
	}
	if n := s.RunWindow(100); n != 1 {
		t.Fatalf("second window fired %d, want 1", n)
	}
	if want := []Time{5, 10, 12, 40}; len(fired) != 4 || fired[3] != want[3] {
		t.Fatalf("fired %v, want %v", fired, want)
	}
}

func TestSyncHorizon(t *testing.T) {
	a, b := NewShard(0, 4), NewShard(1, 4)
	y := &Sync{Shards: []*Shard{a, b}, Lookahead: 7}
	if h, ok := y.Horizon(); ok || h != Never {
		t.Fatalf("Horizon() on idle shards = %v, %v; want Never, false", h, ok)
	}
	b.Events.ScheduleFunc(100, func(Time) {})
	a.Events.ScheduleFunc(50, func(Time) {})
	if h, ok := y.Horizon(); !ok || h != 57 {
		t.Fatalf("Horizon() = %v, %v; want 57 (global min 50 + lookahead 7), true", h, ok)
	}
}

func TestSplitSeed(t *testing.T) {
	if SplitSeed(42, 7) != SplitSeed(42, 7) {
		t.Fatal("SplitSeed is not pure")
	}
	seen := map[uint64]bool{}
	for i := uint64(0); i < 100; i++ {
		s := SplitSeed(42, i)
		if seen[s] {
			t.Fatalf("stream %d collides with an earlier stream", i)
		}
		seen[s] = true
	}
	if SplitSeed(42, 0) == SplitSeed(43, 0) {
		t.Fatal("different bases yield the same stream 0")
	}
}
