package sim

// Shard is one independently-advancing slice of a partitioned simulation:
// its own clock and its own event queue. A sharded world assigns each
// node to exactly one shard; inside a synchronizer-granted safe window
// the shard fires its events with no coordination, which is what lets a
// cluster simulation use every host core while each shard stays
// single-goroutine and bit-for-bit deterministic.
//
// Shard deliberately does NOT own an RNG: random streams must be
// per-NODE (split from the world seed by node index), never per-shard,
// or re-partitioning the same world across a different shard count
// would re-deal the streams and break shard-count invariance.
type Shard struct {
	// ID is the shard's index in the world's fixed shard order. Barriers
	// drain shard outboxes in ascending ID, which is one of the two
	// orderings (with per-source sequence numbers) that make the merged
	// run independent of worker scheduling.
	ID int

	Clock  *Clock
	Events *EventQueue

	// Fired counts events fired by RunWindow over the shard's lifetime.
	// The scale experiment sums it across shards for the host
	// events/sec throughput metric.
	Fired uint64

	// Reached is the high-water mark of the shard clock across every
	// event fired so far. It is NOT the clock after the last event: a
	// shard-hosted machine model may advance the shared clock past the
	// event's timestamp while charging CPU/bus time, and a later cheap
	// event can leave the clock below that peak. Worlds that report a
	// finish time must take max(Reached) over shards — the per-event
	// peak is a property of the node that fired, so the maximum is
	// invariant under how nodes are dealt to shards.
	Reached Time
}

// NewShard returns a shard with a fresh clock at time zero and an event
// queue pre-sized for hint pending events.
func NewShard(id, hint int) *Shard {
	return &Shard{ID: id, Clock: NewClock(), Events: NewEventQueueSize(hint)}
}

// RunWindow fires, in timestamp order, every pending event with
// At <= to, advancing the shard clock to each event as it fires, and
// returns how many events fired. Events may schedule further events;
// those are honoured within the same window if they fall inside it.
//
// The caller (the window synchronizer) guarantees that no event another
// shard could still send can land at or before to — that is exactly the
// conservative-lookahead contract — so firing everything inside the
// window is safe without inspecting any other shard.
//
// The clock is Reset (not AdvanceTo'd) to each event's timestamp: a
// handler hosting a machine model advances the shared clock while it
// charges CPU and bus time, so the next event's timestamp may be
// earlier than where the previous handler left the clock. That is fine
// — each NODE's view of time stays monotonic (hosted models keep a
// per-node floor) — but it means the shard clock is a scratch register
// between events, not a monotonic counter. Reached keeps the monotonic
// summary.
func (s *Shard) RunWindow(to Time) uint64 {
	var n uint64
	q := s.Events
	for {
		at := q.NextAt()
		if at > to {
			break
		}
		s.Clock.Reset(at)
		q.Step()
		if now := s.Clock.Now(); now > s.Reached {
			s.Reached = now
		}
		n++
	}
	s.Fired += n
	return n
}

// Sync is the conservative time-window synchronizer for a set of
// shards. Lookahead is the minimum latency of any cross-shard
// interaction: a message sent at time t can arrive no earlier than
// t + Lookahead, so once every shard has drained up to some horizon h,
// all events up to h + Lookahead are already enqueued somewhere and the
// window [_, h+Lookahead] is safe to run in parallel.
type Sync struct {
	Shards    []*Shard
	Lookahead Time
}

// Horizon returns the next safe window bound: the globally earliest
// pending event plus the lookahead. ok is false when every shard is
// idle (no pending events anywhere), i.e. the simulation is done.
//
// The bound depends only on the union of pending events — not on how
// nodes were dealt to shards — which is what makes the window sequence
// (and therefore the whole run) invariant under shard count.
func (y *Sync) Horizon() (Time, bool) {
	min := Never
	for _, s := range y.Shards {
		if at := s.Events.NextAt(); at < min {
			min = at
		}
	}
	if min == Never {
		return Never, false
	}
	return min + y.Lookahead, true
}

// SplitSeed derives a child seed for stream i from one base seed with a
// SplitMix64-style finalizer. Same contract as par.SplitSeed but keyed
// by uint64 so worlds can split per-node streams directly by node ID.
// The derivation is pure, so re-partitioning nodes across shards never
// re-deals anyone's stream.
func SplitSeed(base, stream uint64) uint64 {
	z := base + 0x9e3779b97f4a7c15*(stream+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
