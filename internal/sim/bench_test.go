package sim

import "testing"

// The event queue is the hottest object in the simulator: every DMA
// burst, packet arrival and timer goes through it. The benchmarks pin
// the allocation behaviour of the two scheduling paths — Schedule
// returns a cancellable handle and must allocate a fresh Event (handles
// may outlive the firing), while ScheduleFunc recycles fired events
// through the queue's free list and must reach zero allocs/op once the
// pool is warm.

// TestScheduleFuncSteadyStateZeroAlloc pins the free-list contract as a
// plain test (it runs in every `go test`, not only under -bench): once
// the pool is warm and the heap has reached its high-water mark, the
// pooled schedule/fire cycle must not allocate at all. A regression
// here multiplies across every simulated DMA burst in every world.
func TestScheduleFuncSteadyStateZeroAlloc(t *testing.T) {
	q := NewEventQueueSize(16)
	fire := func(Time) {}
	// Warm: one full burst materializes the pooled Events.
	for i := 0; i < 16; i++ {
		q.ScheduleFunc(Time(i), fire)
	}
	q.RunUntil(16)
	allocs := testing.AllocsPerRun(100, func() {
		for k := 0; k < 16; k++ {
			q.ScheduleFunc(100+Time(k), fire)
		}
		q.RunUntil(200)
	})
	if allocs != 0 {
		t.Fatalf("warm ScheduleFunc cycle: %v allocs/op, want 0", allocs)
	}
}

// TestEventQueueSizeHint verifies the constructor reserves capacity
// without allocating Event objects up front, and that a zero or
// negative hint degrades to the plain empty queue.
func TestEventQueueSizeHint(t *testing.T) {
	q := NewEventQueueSize(8)
	if got := cap(q.h); got < 8 {
		t.Errorf("heap capacity %d, want >= 8", got)
	}
	if got := cap(q.free); got < 8 {
		t.Errorf("free-list capacity %d, want >= 8", got)
	}
	if got := len(q.h) + len(q.free); got != 0 {
		t.Errorf("pre-allocated %d events, want lazy construction", got)
	}
	for _, hint := range []int{0, -3} {
		q := NewEventQueueSize(hint)
		if q.Len() != 0 || cap(q.h) != 0 {
			t.Errorf("hint %d: want plain empty queue", hint)
		}
	}
}

func BenchmarkSchedule(b *testing.B) {
	q := NewEventQueue()
	fire := func(Time) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Schedule(Time(i), fire)
		q.RunUntil(Time(i + 1))
	}
}

func BenchmarkScheduleFunc(b *testing.B) {
	q := NewEventQueue()
	fire := func(Time) {}
	// Warm the pool: the first round allocates the one Event that is
	// recycled forever after.
	q.ScheduleFunc(0, fire)
	q.RunUntil(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.ScheduleFunc(Time(i+1), fire)
		q.RunUntil(Time(i + 2))
	}
}

// BenchmarkScheduleFuncBurst models a DMA transfer: a batch of events
// scheduled up front, then drained in order.
func BenchmarkScheduleFuncBurst(b *testing.B) {
	q := NewEventQueue()
	fire := func(Time) {}
	const batch = 16
	// Warm the pool to batch size.
	for i := 0; i < batch; i++ {
		q.ScheduleFunc(Time(i), fire)
	}
	q.RunUntil(batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := Time(batch + i*batch)
		for k := 0; k < batch; k++ {
			q.ScheduleFunc(base+Time(k), fire)
		}
		q.RunUntil(base + batch)
	}
}
