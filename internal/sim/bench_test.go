package sim

import "testing"

// The event queue is the hottest object in the simulator: every DMA
// burst, packet arrival and timer goes through it. The benchmarks pin
// the allocation behaviour of the two scheduling paths — Schedule
// returns a cancellable handle and must allocate a fresh Event (handles
// may outlive the firing), while ScheduleFunc recycles fired events
// through the queue's free list and must reach zero allocs/op once the
// pool is warm.

func BenchmarkSchedule(b *testing.B) {
	q := NewEventQueue()
	fire := func(Time) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Schedule(Time(i), fire)
		q.RunUntil(Time(i + 1))
	}
}

func BenchmarkScheduleFunc(b *testing.B) {
	q := NewEventQueue()
	fire := func(Time) {}
	// Warm the pool: the first round allocates the one Event that is
	// recycled forever after.
	q.ScheduleFunc(0, fire)
	q.RunUntil(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.ScheduleFunc(Time(i+1), fire)
		q.RunUntil(Time(i + 2))
	}
}

// BenchmarkScheduleFuncBurst models a DMA transfer: a batch of events
// scheduled up front, then drained in order.
func BenchmarkScheduleFuncBurst(b *testing.B) {
	q := NewEventQueue()
	fire := func(Time) {}
	const batch = 16
	// Warm the pool to batch size.
	for i := 0; i < batch; i++ {
		q.ScheduleFunc(Time(i), fire)
	}
	q.RunUntil(batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := Time(batch + i*batch)
		for k := 0; k < batch; k++ {
			q.ScheduleFunc(base+Time(k), fire)
		}
		q.RunUntil(base + batch)
	}
}
