// Package sim provides the deterministic simulation substrate that every
// other component of the machine model is built on: a picosecond-resolution
// clock, an ordered event queue, and a seedable pseudo-random source.
//
// All timing results in this repository are expressed in simulated time
// produced by this package, never in host wall-clock time, so experiment
// output is bit-for-bit reproducible across runs and hosts.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in simulated time, measured in integer picoseconds from
// the start of the simulation. Picosecond resolution lets us represent a
// 150 MHz CPU cycle (6666.67 ns/1000) and a 12.5 MHz bus cycle exactly
// enough that rounding error never accumulates past one cycle over the
// longest experiments in the suite.
type Time int64

// Common durations, following the style of the time package.
const (
	Picosecond  Time = 1
	Nanosecond       = 1000 * Picosecond
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Never is a sentinel meaning "no scheduled time". It sorts after every
// representable simulation instant.
const Never Time = 1<<63 - 1

// Nanoseconds returns t as a float64 count of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds returns t as a float64 count of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Duration converts t to a time.Duration (nanosecond resolution,
// truncating sub-nanosecond remainder). Useful for human-readable output.
func (t Time) Duration() time.Duration { return time.Duration(t / Nanosecond) }

// String formats t with an adaptive unit, e.g. "18.6µs" or "640ns".
func (t Time) String() string {
	switch {
	case t == Never:
		return "never"
	case t < 0:
		return "-" + (-t).String()
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return trimZeros(fmt.Sprintf("%.3f", t.Nanoseconds())) + "ns"
	case t < Millisecond:
		return trimZeros(fmt.Sprintf("%.3f", t.Microseconds())) + "µs"
	case t < Second:
		return trimZeros(fmt.Sprintf("%.3f", float64(t)/float64(Millisecond))) + "ms"
	default:
		return trimZeros(fmt.Sprintf("%.3f", float64(t)/float64(Second))) + "s"
	}
}

func trimZeros(s string) string {
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s
}

// Hz is a clock frequency. The model uses it to convert cycle counts of a
// particular clock domain (CPU core, I/O bus, network link) into Time.
type Hz uint64

// Standard frequencies used by the machine presets.
const (
	MHz Hz = 1_000_000
	GHz Hz = 1_000_000_000
)

// Period returns the duration of one cycle at frequency f, rounded to the
// nearest picosecond. f must be non-zero.
func (f Hz) Period() Time {
	if f == 0 {
		panic("sim: zero frequency has no period")
	}
	return Time((uint64(Second) + uint64(f)/2) / uint64(f))
}

// Cycles converts a cycle count in this clock domain into a duration.
func (f Hz) Cycles(n int64) Time { return Time(n) * f.Period() }

// CyclesIn reports how many whole cycles of this clock domain fit in d.
func (f Hz) CyclesIn(d Time) int64 {
	p := f.Period()
	if p == 0 {
		return 0
	}
	return int64(d / p)
}

// String formats the frequency, e.g. "12.5MHz".
func (f Hz) String() string {
	switch {
	case f >= GHz:
		return trimZeros(fmt.Sprintf("%.3f", float64(f)/float64(GHz))) + "GHz"
	case f >= MHz:
		return trimZeros(fmt.Sprintf("%.3f", float64(f)/float64(MHz))) + "MHz"
	default:
		return fmt.Sprintf("%dHz", uint64(f))
	}
}

// Clock is the single source of simulated time for one machine (or one
// cluster — machines connected by links share a clock so that link events
// and CPU events interleave consistently).
//
// Components advance the clock by the cost of whatever they just modelled
// (an instruction issue, a bus transaction, a syscall trap). The zero
// value is a clock at time zero, ready to use.
type Clock struct {
	now Time
}

// NewClock returns a clock starting at time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current simulated time.
func (c *Clock) Now() Time { return c.now }

// Advance moves simulated time forward by d. Negative advances panic:
// simulated time is monotonic by construction, and a negative cost always
// indicates a modelling bug upstream.
func (c *Clock) Advance(d Time) Time {
	if d < 0 {
		panic(fmt.Sprintf("sim: clock advanced by negative duration %v", d))
	}
	c.now += d
	return c.now
}

// AdvanceTo moves the clock forward to t if t is in the future; moving
// backwards is ignored (events may be processed at a timestamp the clock
// has already passed).
func (c *Clock) AdvanceTo(t Time) {
	if t > c.now {
		c.now = t
	}
}

// Reset rewinds (or advances) the clock to exactly t. It exists solely
// for world snapshot/restore (machine.Snapshot / machine.Restore):
// ordinary simulation code must only move time forward through Advance
// and AdvanceTo, which preserve monotonicity.
func (c *Clock) Reset(t Time) { c.now = t }
