package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// TestCancelStaleHandleIsHarmless: cancelling a handle after its event
// has fired — even when OTHER live events now occupy the heap slots the
// stale index points at — must not evict an innocent event or disturb
// firing order. This is the popped-then-cancelled corruption the index
// sentinels guard against.
func TestCancelStaleHandleIsHarmless(t *testing.T) {
	q := NewEventQueue()
	var fired []string
	mk := func(name string, at Time) *Event {
		return q.Schedule(at, func(Time) { fired = append(fired, name) })
	}
	a := mk("a", 10)
	mk("b", 20)
	mk("c", 30)
	q.RunUntil(10) // fires a; its stale index now aliases a live slot
	if a.Cancelled() {
		t.Fatal("fired event reports Cancelled")
	}
	q.Cancel(a) // stale: must be a no-op
	q.Cancel(a) // double-cancel of a stale handle: still a no-op
	q.RunUntil(100)
	if want := []string{"a", "b", "c"}; !reflect.DeepEqual(fired, want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
}

// TestCancelForeignHandleIsHarmless: a handle scheduled on one queue
// passed to another queue's Cancel must not touch the second heap, even
// when the index is in range there.
func TestCancelForeignHandleIsHarmless(t *testing.T) {
	q1, q2 := NewEventQueue(), NewEventQueue()
	var fired []string
	foreign := q1.Schedule(10, func(Time) { fired = append(fired, "q1") })
	q2.Schedule(10, func(Time) { fired = append(fired, "q2-a") })
	q2.Schedule(20, func(Time) { fired = append(fired, "q2-b") })
	q2.Cancel(foreign) // in-range index, wrong queue: must be a no-op
	q2.RunUntil(100)
	q1.RunUntil(100)
	if want := []string{"q2-a", "q2-b", "q1"}; !reflect.DeepEqual(fired, want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	if foreign.Cancelled() {
		t.Fatal("foreign handle marked cancelled by wrong queue")
	}
}

// TestScheduleCancelFireInterleaved: a torture mix of scheduling,
// cancelling (live, stale, double) and firing keeps the heap sound and
// the surviving events firing in (At, seq) order.
func TestScheduleCancelFireInterleaved(t *testing.T) {
	q := NewEventQueue()
	var fired []int
	handles := map[int]*Event{}
	sched := func(id int, at Time) {
		handles[id] = q.Schedule(at, func(Time) { fired = append(fired, id) })
	}
	// Wave 1: six events, two cancelled while live.
	for id, at := range map[int]Time{1: 50, 2: 10, 3: 30, 4: 30, 5: 70, 6: 20} {
		sched(id, at)
	}
	q.Cancel(handles[3]) // live cancel middle-of-heap
	q.Cancel(handles[2]) // live cancel heap root
	if !handles[3].Cancelled() || !handles[2].Cancelled() {
		t.Fatal("live cancels not recorded")
	}
	q.RunUntil(30) // fires 6 (t=20) and 4 (t=30)
	// Wave 2: cancel fired and already-cancelled handles (all no-ops),
	// then add more events, including one at a time already passed.
	q.Cancel(handles[6])
	q.Cancel(handles[4])
	q.Cancel(handles[2])
	sched(7, 40)
	sched(8, 60)
	sched(9, 5) // in the past: fires first on the next run
	q.Cancel(handles[8])
	q.RunUntil(200)
	if want := []int{6, 4, 9, 7, 1, 5}; !reflect.DeepEqual(fired, want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	if q.Len() != 0 {
		t.Fatalf("%d events left", q.Len())
	}
}

// TestCancelFromWithinFire: an event's Fire cancelling a later pending
// event must work, and cancelling an event that fired earlier in the
// same RunUntil must be a no-op.
func TestCancelFromWithinFire(t *testing.T) {
	q := NewEventQueue()
	var fired []string
	var early, victim *Event
	early = q.Schedule(10, func(Time) { fired = append(fired, "early") })
	q.Schedule(20, func(Time) {
		fired = append(fired, "canceller")
		q.Cancel(victim) // pending: removed
		q.Cancel(early)  // already fired this RunUntil: no-op
	})
	victim = q.Schedule(30, func(Time) { fired = append(fired, "victim") })
	q.Schedule(40, func(Time) { fired = append(fired, "tail") })
	q.RunUntil(100)
	if want := []string{"early", "canceller", "tail"}; !reflect.DeepEqual(fired, want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	if !victim.Cancelled() {
		t.Fatal("victim not marked cancelled")
	}
}

// TestScheduleFuncOrderingAndReuse: pooled events interleave with
// handle-returning ones in strict (At, seq) order, and recycling across
// RunUntil calls reuses the same backing objects without breaking FIFO
// ties.
func TestScheduleFuncOrderingAndReuse(t *testing.T) {
	q := NewEventQueue()
	var fired []string
	for round := 0; round < 3; round++ {
		base := Time(round * 100)
		q.ScheduleFunc(base+20, func(Time) { fired = append(fired, fmt.Sprintf("r%d-p20a", round)) })
		q.Schedule(base+20, func(Time) { fired = append(fired, fmt.Sprintf("r%d-h20", round)) })
		q.ScheduleFunc(base+20, func(Time) { fired = append(fired, fmt.Sprintf("r%d-p20b", round)) })
		q.ScheduleFunc(base+10, func(Time) { fired = append(fired, fmt.Sprintf("r%d-p10", round)) })
		q.RunUntil(base + 99)
	}
	var want []string
	for r := 0; r < 3; r++ {
		want = append(want,
			fmt.Sprintf("r%d-p10", r), fmt.Sprintf("r%d-p20a", r),
			fmt.Sprintf("r%d-h20", r), fmt.Sprintf("r%d-p20b", r))
	}
	if !reflect.DeepEqual(fired, want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
}

// TestScheduleFuncRescheduleFromFire: a pooled event's Fire scheduling
// the next pooled event (the DMA walker pattern) reuses the freed slot
// and never allocates past the first event.
func TestScheduleFuncRescheduleFromFire(t *testing.T) {
	q := NewEventQueue()
	var hops int
	var step func(now Time)
	step = func(now Time) {
		hops++
		if hops < 10 {
			q.ScheduleFunc(now+5, step)
		}
	}
	q.ScheduleFunc(0, step)
	end := q.Drain(0)
	if hops != 10 {
		t.Fatalf("hops = %d, want 10", hops)
	}
	if end != 45 {
		t.Fatalf("last event at %v, want 45", end)
	}
	if got := len(q.free); got != 1 {
		t.Fatalf("free list holds %d events, want 1 (the single recycled walker)", got)
	}
}
