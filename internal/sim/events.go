package sim

import "container/heap"

// Event is a deferred action scheduled on an EventQueue. Events model
// asynchronous hardware activity — a DMA transfer chunk completing, a
// network packet arriving — that must happen at a precise simulated time
// regardless of what the CPU is doing.
type Event struct {
	// At is the simulated time the event fires.
	At Time
	// Fire performs the event's effect. It runs with the clock already
	// advanced to at least At.
	Fire func(now Time)

	seq    uint64 // tie-breaker: FIFO among events with equal At
	pri    uint64 // ranks before seq; 0 except via SchedulePri
	index  int    // heap bookkeeping; see the sentinels below
	pooled bool   // recycled through the queue's free list after firing
}

// index sentinels. A live event's index is its heap position (>= 0);
// negative values record why it left the heap, so stale handles can
// never alias a live slot.
const (
	idxFired     = -1 // popped by RunUntil/Drain (or mid-removal)
	idxCancelled = -2 // removed by Cancel
)

// Cancelled reports whether the event was removed before firing.
func (e *Event) Cancelled() bool { return e.index == idxCancelled }

// EventQueue is a deterministic time-ordered queue of events. Events with
// the same timestamp fire in the order they were scheduled, which keeps
// whole-simulation behaviour reproducible.
//
// The queue does not own a clock; the machine drives it by calling
// RunUntil with the clock's current time after every modelled cost.
type EventQueue struct {
	h    eventHeap
	seq  uint64
	free []*Event // recycled ScheduleFunc events (no outstanding handles)
}

// NewEventQueue returns an empty queue.
func NewEventQueue() *EventQueue { return &EventQueue{} }

// NewEventQueueSize returns an empty queue whose heap and free list are
// pre-sized for roughly hint simultaneously pending events. Only
// capacity is reserved — no Event objects are allocated up front — so
// construction stays cheap while the first hint schedules avoid the
// append-growth reallocations that would otherwise show up as steady-
// state allocations in tight device loops.
func NewEventQueueSize(hint int) *EventQueue {
	if hint <= 0 {
		return &EventQueue{}
	}
	return &EventQueue{
		h:    make(eventHeap, 0, hint),
		free: make([]*Event, 0, hint),
	}
}

// SnapshotSeq returns the queue's scheduling tie-break counter, for
// world snapshot/restore. Snapshots are only taken with the queue
// settled (Len() == 0), so the counter is the queue's entire state.
func (q *EventQueue) SnapshotSeq() uint64 { return q.seq }

// Reset discards every pending event without firing it and rewinds the
// tie-break counter to seq, as part of restoring a world snapshot.
// Discarded pooled events return to the free list; outstanding handles
// observe Cancelled.
func (q *EventQueue) Reset(seq uint64) {
	for _, e := range q.h {
		e.index = idxCancelled
		q.release(e)
	}
	for i := range q.h {
		q.h[i] = nil
	}
	q.h = q.h[:0]
	q.seq = seq
}

// Schedule enqueues fire to run at time at and returns a handle that can
// be passed to Cancel. Handle-returning events are never pooled: the
// caller may hold the handle indefinitely, so recycling could alias a
// stale handle onto a live event. Use ScheduleFunc on hot paths that
// never cancel.
func (q *EventQueue) Schedule(at Time, fire func(now Time)) *Event {
	q.seq++
	e := &Event{At: at, Fire: fire, seq: q.seq}
	heap.Push(&q.h, e)
	return e
}

// ScheduleFunc enqueues fire at time at without returning a handle.
// Because no handle escapes, the Event object is recycled through an
// internal free list once it fires, making repeated scheduling
// allocation-free. This is the hot path used by DMA transfer walkers
// and other fire-and-forget device activity.
func (q *EventQueue) ScheduleFunc(at Time, fire func(now Time)) {
	q.seq++
	var e *Event
	if n := len(q.free); n > 0 {
		e = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
	} else {
		e = &Event{pooled: true}
	}
	e.At, e.Fire, e.seq, e.pri = at, fire, q.seq, 0
	heap.Push(&q.h, e)
}

// SchedulePri is ScheduleFunc with an explicit priority word: events
// with equal At fire in (pri, seq) order, so a caller that derives pri
// from event CONTENT gets a same-instant ordering that does not depend
// on scheduling order. The adaptive sharded synchronizer uses this to
// keep message delivery order canonical when different shard layouts
// flush the same messages at different barriers; everything else
// schedules at pri 0 and keeps plain FIFO.
func (q *EventQueue) SchedulePri(at Time, pri uint64, fire func(now Time)) {
	q.seq++
	var e *Event
	if n := len(q.free); n > 0 {
		e = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
	} else {
		e = &Event{pooled: true}
	}
	e.At, e.Fire, e.seq, e.pri = at, fire, q.seq, pri
	heap.Push(&q.h, e)
}

// release returns a pooled event to the free list. Called after the
// event has been popped and its Fire/At copied out.
func (q *EventQueue) release(e *Event) {
	if !e.pooled {
		return
	}
	e.Fire = nil // drop the closure eagerly
	q.free = append(q.free, e)
}

// Cancel removes a scheduled event. Cancelling an event that already
// fired or was already cancelled is a no-op. Cancel validates that the
// handle actually occupies its claimed heap slot in THIS queue before
// touching the heap, so a stale or foreign handle can never evict an
// innocent event or corrupt heap order.
func (q *EventQueue) Cancel(e *Event) {
	if e == nil || e.index < 0 || e.index >= len(q.h) || q.h[e.index] != e {
		return
	}
	heap.Remove(&q.h, e.index)
	e.index = idxCancelled
}

// Len reports how many events are pending.
func (q *EventQueue) Len() int { return len(q.h) }

// NextAt returns the timestamp of the earliest pending event, or Never if
// the queue is empty.
func (q *EventQueue) NextAt() Time {
	if len(q.h) == 0 {
		return Never
	}
	return q.h[0].At
}

// Step pops and fires exactly the earliest pending event, returning
// its timestamp. It reports false (firing nothing) on an empty queue.
// The sharded engine drives shards one event at a time so it can
// advance the shard clock to each event and count fired events for the
// host-throughput metric; RunUntil remains the single-world fast path.
func (q *EventQueue) Step() (Time, bool) {
	if len(q.h) == 0 {
		return Never, false
	}
	e := heap.Pop(&q.h).(*Event)
	fire, at := e.Fire, e.At
	q.release(e) // recycle before firing: fire may reschedule
	fire(at)
	return at, true
}

// RunUntil fires, in order, every event with At <= t. Events fired may
// schedule further events; those are honoured within the same call if
// they also fall at or before t.
func (q *EventQueue) RunUntil(t Time) {
	for len(q.h) > 0 && q.h[0].At <= t {
		e := heap.Pop(&q.h).(*Event)
		fire, at := e.Fire, e.At
		q.release(e) // recycle before firing: fire may reschedule
		fire(at)
	}
}

// Drain fires every pending event regardless of timestamp, in time order,
// and returns the timestamp of the last event fired (or start if none).
// It is used at end of simulation to let in-flight transfers finish.
func (q *EventQueue) Drain(start Time) Time {
	last := start
	for len(q.h) > 0 {
		e := heap.Pop(&q.h).(*Event)
		fire, at := e.Fire, e.At
		if at > last {
			last = at
		}
		q.release(e)
		fire(at)
	}
	return last
}

// eventHeap implements heap.Interface ordered by (At, pri, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	if h[i].pri != h[j].pri {
		return h[i].pri < h[j].pri
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	// Mark the element as out-of-heap HERE, not in the callers: every
	// removal path (RunUntil, Drain, heap.Remove via Cancel) funnels
	// through this method, so no window exists in which a removed
	// event still advertises a live-looking index.
	e.index = idxFired
	return e
}
