package sim

import "container/heap"

// Event is a deferred action scheduled on an EventQueue. Events model
// asynchronous hardware activity — a DMA transfer chunk completing, a
// network packet arriving — that must happen at a precise simulated time
// regardless of what the CPU is doing.
type Event struct {
	// At is the simulated time the event fires.
	At Time
	// Fire performs the event's effect. It runs with the clock already
	// advanced to at least At.
	Fire func(now Time)

	seq   uint64 // tie-breaker: FIFO among events with equal At
	index int    // heap bookkeeping; -1 once popped or cancelled
}

// Cancelled reports whether the event was removed before firing.
func (e *Event) Cancelled() bool { return e.index == -2 }

// EventQueue is a deterministic time-ordered queue of events. Events with
// the same timestamp fire in the order they were scheduled, which keeps
// whole-simulation behaviour reproducible.
//
// The queue does not own a clock; the machine drives it by calling
// RunUntil with the clock's current time after every modelled cost.
type EventQueue struct {
	h   eventHeap
	seq uint64
}

// NewEventQueue returns an empty queue.
func NewEventQueue() *EventQueue { return &EventQueue{} }

// Schedule enqueues fire to run at time at and returns a handle that can
// be passed to Cancel.
func (q *EventQueue) Schedule(at Time, fire func(now Time)) *Event {
	q.seq++
	e := &Event{At: at, Fire: fire, seq: q.seq}
	heap.Push(&q.h, e)
	return e
}

// Cancel removes a scheduled event. Cancelling an event that already fired
// or was already cancelled is a no-op.
func (q *EventQueue) Cancel(e *Event) {
	if e == nil || e.index < 0 {
		return
	}
	heap.Remove(&q.h, e.index)
	e.index = -2
}

// Len reports how many events are pending.
func (q *EventQueue) Len() int { return len(q.h) }

// NextAt returns the timestamp of the earliest pending event, or Never if
// the queue is empty.
func (q *EventQueue) NextAt() Time {
	if len(q.h) == 0 {
		return Never
	}
	return q.h[0].At
}

// RunUntil fires, in order, every event with At <= t. Events fired may
// schedule further events; those are honoured within the same call if
// they also fall at or before t.
func (q *EventQueue) RunUntil(t Time) {
	for len(q.h) > 0 && q.h[0].At <= t {
		e := heap.Pop(&q.h).(*Event)
		e.index = -1
		e.Fire(e.At)
	}
}

// Drain fires every pending event regardless of timestamp, in time order,
// and returns the timestamp of the last event fired (or start if none).
// It is used at end of simulation to let in-flight transfers finish.
func (q *EventQueue) Drain(start Time) Time {
	last := start
	for len(q.h) > 0 {
		e := heap.Pop(&q.h).(*Event)
		e.index = -1
		if e.At > last {
			last = e.At
		}
		e.Fire(e.At)
	}
	return last
}

// eventHeap implements heap.Interface ordered by (At, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
