package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0ps"},
		{500, "500ps"},
		{Nanosecond, "1ns"},
		{640 * Nanosecond, "640ns"},
		{1100 * Nanosecond, "1.1µs"},
		{18600 * Nanosecond, "18.6µs"},
		{2 * Millisecond, "2ms"},
		{3 * Second, "3s"},
		{Never, "never"},
		{-640 * Nanosecond, "-640ns"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestHzPeriod(t *testing.T) {
	cases := []struct {
		f    Hz
		want Time
	}{
		{150 * MHz, 6667},     // 6.667 ns, rounded to nearest ps
		{12_500_000, 80_000},  // 12.5 MHz TurboChannel: 80 ns
		{33 * MHz, 30303},     // PCI-33
		{66 * MHz, 15152},     // PCI-66
		{1 * GHz, Nanosecond}, // exact
	}
	for _, c := range cases {
		if got := c.f.Period(); got != c.want {
			t.Errorf("%v.Period() = %dps, want %dps", c.f, int64(got), int64(c.want))
		}
	}
}

func TestHzCyclesRoundTrip(t *testing.T) {
	f := 12_500_000 * Hz(1) // exact 80ns period
	if d := f.Cycles(6); d != 480*Nanosecond {
		t.Fatalf("6 bus cycles = %v, want 480ns", d)
	}
	if n := f.CyclesIn(480 * Nanosecond); n != 6 {
		t.Fatalf("CyclesIn(480ns) = %d, want 6", n)
	}
}

func TestHzString(t *testing.T) {
	if got := Hz(12_500_000).String(); got != "12.5MHz" {
		t.Errorf("12.5 MHz formats as %q", got)
	}
	if got := (2 * GHz).String(); got != "2GHz" {
		t.Errorf("2 GHz formats as %q", got)
	}
	if got := Hz(440).String(); got != "440Hz" {
		t.Errorf("440 Hz formats as %q", got)
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatal("new clock not at zero")
	}
	c.Advance(80 * Nanosecond)
	c.Advance(0)
	if c.Now() != 80*Nanosecond {
		t.Fatalf("clock at %v, want 80ns", c.Now())
	}
	c.AdvanceTo(40 * Nanosecond) // backwards: ignored
	if c.Now() != 80*Nanosecond {
		t.Fatalf("AdvanceTo moved clock backwards to %v", c.Now())
	}
	c.AdvanceTo(200 * Nanosecond)
	if c.Now() != 200*Nanosecond {
		t.Fatalf("AdvanceTo did not move clock forward: %v", c.Now())
	}
}

func TestClockNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Advance did not panic")
		}
	}()
	NewClock().Advance(-1)
}

func TestEventQueueOrdering(t *testing.T) {
	q := NewEventQueue()
	var got []int
	q.Schedule(30, func(Time) { got = append(got, 3) })
	q.Schedule(10, func(Time) { got = append(got, 1) })
	q.Schedule(20, func(Time) { got = append(got, 2) })
	q.RunUntil(25)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("events up to t=25 fired as %v, want [1 2]", got)
	}
	q.RunUntil(100)
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("remaining events fired as %v, want [1 2 3]", got)
	}
	if q.Len() != 0 {
		t.Fatalf("queue not empty after draining: %d left", q.Len())
	}
}

func TestEventQueueFIFOAtSameTime(t *testing.T) {
	q := NewEventQueue()
	var got []int
	for i := 0; i < 8; i++ {
		i := i
		q.Schedule(50, func(Time) { got = append(got, i) })
	}
	q.RunUntil(50)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-timestamp events fired out of order: %v", got)
		}
	}
}

func TestEventQueueCancel(t *testing.T) {
	q := NewEventQueue()
	fired := false
	e := q.Schedule(10, func(Time) { fired = true })
	q.Cancel(e)
	if !e.Cancelled() {
		t.Fatal("cancelled event does not report Cancelled")
	}
	q.Cancel(e) // double cancel: no-op
	q.RunUntil(100)
	if fired {
		t.Fatal("cancelled event fired")
	}
	q.Cancel(nil) // nil-safe
}

func TestEventQueueRescheduleDuringFire(t *testing.T) {
	q := NewEventQueue()
	var got []Time
	q.Schedule(10, func(now Time) {
		got = append(got, now)
		q.Schedule(now+5, func(now Time) { got = append(got, now) })
		q.Schedule(now+50, func(now Time) { got = append(got, now) })
	})
	q.RunUntil(20)
	if len(got) != 2 || got[0] != 10 || got[1] != 15 {
		t.Fatalf("cascaded events = %v, want [10 15]", got)
	}
	if q.NextAt() != 60 {
		t.Fatalf("NextAt = %v, want 60", q.NextAt())
	}
}

func TestEventQueueDrain(t *testing.T) {
	q := NewEventQueue()
	n := 0
	q.Schedule(100, func(Time) { n++ })
	q.Schedule(900, func(Time) { n++ })
	last := q.Drain(50)
	if n != 2 || last != 900 {
		t.Fatalf("Drain fired %d events, last at %v; want 2 events, last 900", n, last)
	}
	if q.Drain(42) != 42 {
		t.Fatal("Drain of empty queue should return start time")
	}
}

func TestEventQueueNextAtEmpty(t *testing.T) {
	if NewEventQueue().NextAt() != Never {
		t.Fatal("empty queue NextAt should be Never")
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 64; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/64 identical values", same)
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(7)
	seen := make(map[int]bool)
	for i := 0; i < 10_000; i++ {
		v := r.Intn(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Intn(5) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("Intn(5) over 10k draws only produced %d distinct values", len(seen))
	}
}

func TestRandIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestRandPermIsPermutation(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%32) + 1
		p := NewRand(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

// Property: clock time after a sequence of Advance calls equals the sum of
// the durations, i.e. advancing is associative and lossless.
func TestClockAdvanceSums(t *testing.T) {
	err := quick.Check(func(steps []uint16) bool {
		c := NewClock()
		var sum Time
		for _, s := range steps {
			d := Time(s)
			sum += d
			c.Advance(d)
		}
		return c.Now() == sum
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
