package fault

// Host-speed pin for the per-judgement draw path (ROADMAP "host-speed
// pass" item): Judge runs once per remote payload on every faulted
// fabric, so after the per-link counter map has seen a link once, a
// judgement must not allocate — whatever the verdict draws.

import (
	"testing"

	"uldma/internal/sim"
)

// benchPlan exercises every draw in the fixed order: drop, dup,
// per-copy jitter and reorder.
func benchPlan() Plan {
	return Plan{Default: LinkFaults{
		Drop: 0.05, Dup: 0.2, Jitter: 3 * sim.Microsecond,
		Reorder: 0.2, ReorderBy: 5 * sim.Microsecond,
	}}
}

func BenchmarkInjectorJudge(b *testing.B) {
	in := New(benchPlan(), 42)
	in.Judge(0, 1, 0) // warm the per-link counter slot
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in.Judge(0, 1, sim.Time(i))
	}
}

func TestInjectorJudgeZeroAlloc(t *testing.T) {
	in := New(benchPlan(), 42)
	in.Judge(0, 1, 0) // warm the per-link counter slot
	var at sim.Time
	allocs := testing.AllocsPerRun(1000, func() {
		at += sim.Microsecond
		in.Judge(0, 1, at)
	})
	if allocs != 0 {
		t.Fatalf("Judge allocates %.1f allocs/op on a warm link, pinned at 0", allocs)
	}
}

// The zero-plan fast path must also stay allocation-free — it is the
// identity verdict on every healthy fabric with a plane attached.
func TestInjectorJudgeZeroPlanZeroAlloc(t *testing.T) {
	in := New(Plan{}, 1)
	allocs := testing.AllocsPerRun(1000, func() {
		in.Judge(0, 1, 0)
	})
	if allocs != 0 {
		t.Fatalf("zero-plan Judge allocates %.1f allocs/op, pinned at 0", allocs)
	}
}
