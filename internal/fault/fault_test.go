package fault

import (
	"testing"

	"uldma/internal/net"
	"uldma/internal/sim"
)

// lossy returns a plan that exercises every random draw.
func lossy() Plan {
	return Plan{Default: LinkFaults{
		Drop:      0.3,
		Dup:       0.2,
		Reorder:   0.25,
		ReorderBy: 10 * sim.Microsecond,
		Jitter:    2 * sim.Microsecond,
	}}
}

// judgeStream runs n judgements across a few links and times.
func judgeStream(in *Injector, n int) []net.Verdict {
	out := make([]net.Verdict, 0, n)
	for i := 0; i < n; i++ {
		src, dst := i%3, (i+1)%3
		out = append(out, in.Judge(src, dst, sim.Time(i)*sim.Microsecond))
	}
	return out
}

// TestJudgeDeterminism: the same (plan, seed) pair replays the exact
// verdict stream; a different seed diverges.
func TestJudgeDeterminism(t *testing.T) {
	a := judgeStream(New(lossy(), 42), 1000)
	b := judgeStream(New(lossy(), 42), 1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("verdict %d differs for identical (plan, seed): %+v vs %+v", i, a[i], b[i])
		}
	}
	c := judgeStream(New(lossy(), 43), 1000)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("seeds 42 and 43 produced identical fault schedules")
	}
}

// TestZeroPlanIsInert: a zero plan short-circuits to the identity
// verdict without touching the RNG or the per-link counters, so an
// attached zero-fault plane is state-identical to no plane at all.
func TestZeroPlanIsInert(t *testing.T) {
	in := New(Plan{}, 7)
	if !in.plan.Zero() {
		t.Fatal("empty plan not recognised as zero")
	}
	before := in.rng.State()
	for i := 0; i < 100; i++ {
		v := in.Judge(0, 1, sim.Time(i))
		if v.N != 1 || v.Copies[0] != (net.Arrival{}) {
			t.Fatalf("zero plan verdict = %+v, want identity", v)
		}
	}
	if in.rng.State() != before {
		t.Fatal("zero plan consumed random draws")
	}
	if len(in.sent) != 0 {
		t.Fatal("zero plan advanced per-link counters")
	}
	// A plan with only zero-valued link entries is zero too.
	p := Plan{Links: map[Link]LinkFaults{{0, 1}: {}}}
	if !p.Zero() {
		t.Fatal("all-zero link map not recognised as zero")
	}
	if (Plan{Scripts: []Script{{0, 1, 3}}}).Zero() {
		t.Fatal("scripted plan claimed to be zero")
	}
}

// TestSnapshotRestoreReplays: restoring mid-stream replays the exact
// post-snapshot verdicts — the property net.Cluster snapshots stand on.
func TestSnapshotRestoreReplays(t *testing.T) {
	in := New(lossy(), 99)
	judgeStream(in, 137) // advance to an arbitrary point
	snap := in.SnapshotState()
	first := judgeStream(in, 500)
	if err := in.RestoreState(snap); err != nil {
		t.Fatal(err)
	}
	second := judgeStream(in, 500)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replayed verdict %d differs: %+v vs %+v", i, first[i], second[i])
		}
	}
	if err := in.RestoreState(42); err == nil {
		t.Fatal("restore accepted a foreign state value")
	}
}

// TestDownWindow: messages sent inside an outage window are dropped
// without consuming a random draw; outside it they pass.
func TestDownWindow(t *testing.T) {
	p := Plan{Links: map[Link]LinkFaults{
		{0, 1}: {Down: []Window{{From: 10 * sim.Microsecond, Until: 20 * sim.Microsecond}}},
	}}
	in := New(p, 1)
	before := in.rng.State()
	if v := in.Judge(0, 1, 15*sim.Microsecond); v.N != 0 {
		t.Fatalf("in-window send survived: %+v", v)
	}
	if v := in.Judge(0, 1, 20*sim.Microsecond); v.N != 1 {
		t.Fatalf("at-Until send dropped (window is half-open): %+v", v)
	}
	if v := in.Judge(0, 1, 5*sim.Microsecond); v.N != 1 {
		t.Fatalf("pre-window send dropped: %+v", v)
	}
	if v := in.Judge(1, 0, 15*sim.Microsecond); v.N != 1 {
		t.Fatalf("reverse link affected by the window: %+v", v)
	}
	if in.rng.State() != before {
		t.Fatal("down-window judgement consumed random draws")
	}
}

// TestScriptedNthDrop: a script kills exactly the Nth payload on its
// link, counted per link in send order, with no randomness.
func TestScriptedNthDrop(t *testing.T) {
	p := Plan{Scripts: []Script{{Src: 0, Dst: 1, Nth: 3}, {Src: 0, Dst: 1, Nth: 5}}}
	in := New(p, 1)
	var dropped []int
	for i := 1; i <= 8; i++ {
		if v := in.Judge(0, 1, sim.Time(i)); v.N == 0 {
			dropped = append(dropped, i)
		}
		// Interleave traffic on another link: it must not advance the
		// scripted link's counter.
		if v := in.Judge(1, 0, sim.Time(i)); v.N != 1 {
			t.Fatalf("unscripted link lost message %d", i)
		}
	}
	if len(dropped) != 2 || dropped[0] != 3 || dropped[1] != 5 {
		t.Fatalf("scripted drops hit %v, want [3 5]", dropped)
	}
}

// TestDupAndJitterShape: duplicated verdicts carry two copies and
// jitter stays within the configured bound.
func TestDupAndJitterShape(t *testing.T) {
	p := Plan{Default: LinkFaults{Dup: 0.5, Jitter: 3 * sim.Microsecond}}
	in := New(p, 5)
	dups := 0
	for i := 0; i < 2000; i++ {
		v := in.Judge(0, 1, sim.Time(i))
		if v.N < 1 || v.N > 2 {
			t.Fatalf("verdict %d has N=%d", i, v.N)
		}
		if v.N == 2 {
			dups++
		}
		for c := 0; c < v.N; c++ {
			if v.Copies[c].Delay > 3*sim.Microsecond {
				t.Fatalf("jitter %v exceeds bound", v.Copies[c].Delay)
			}
			if v.Copies[c].Unordered {
				t.Fatal("reorder drawn with Reorder=0")
			}
		}
	}
	if dups < 800 || dups > 1200 {
		t.Fatalf("dup rate %d/2000 far from 0.5", dups)
	}
}
