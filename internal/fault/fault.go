// Package fault is the deterministic fault-injection plane for the NOW
// fabric. It implements net.FaultPlane: the fabric asks it to Judge
// every remote payload at send time, and the plane rules — drop it,
// duplicate it, delay it, or release it from the per-destination FIFO
// so it overtakes earlier traffic.
//
// Everything is driven by a sim-seeded SplitMix64 stream with a FIXED
// draw order per judgement (down-window check, scripted check, drop
// draw, dup draw, then per-copy jitter and reorder draws), so a (Plan,
// seed) pair replays byte-identically: a counterexample seed printed by
// a failing property test reproduces the exact fault schedule. The
// plane's mutable state (RNG position, per-link delivery counters) is
// captured by SnapshotState/RestoreState so net.Cluster snapshots can
// rewind it together with the nodes.
//
// Faults model the LINK, not the endpoints: a verdict never corrupts
// payload bytes (Telegraphos links are CRC-protected; a damaged packet
// is a dropped packet), and remote atomics are never judged — they are
// the synchronous reliable control channel (see net.FaultPlane).
package fault

import (
	"fmt"
	"sort"

	"uldma/internal/net"
	"uldma/internal/sim"
)

// Link names one directed source→destination pair. The fabric stamps
// src = -1 on traffic injected directly (not through a node's engine
// port); plans normally only name real node ids.
type Link struct {
	Src, Dst int
}

// Window is a half-open simulated-time interval [From, Until). A
// message SENT inside a down window is lost (the send instant decides:
// the sender's NIC pushed it into a dead link).
type Window struct {
	From, Until sim.Time
}

// Script targets one exact message: "drop the Nth remote payload sent
// from Src to Dst" (Nth is 1-based, counted per link in send order).
// Scripts reproduce worst cases found by search — e.g. "drop the commit
// word of message 3" — without any randomness.
type Script struct {
	Src, Dst int
	Nth      uint64
}

// LinkFaults is the fault mix applied to one link (or, as Plan.Default,
// to every link without an explicit entry).
type LinkFaults struct {
	// Drop is the probability a message vanishes.
	Drop float64
	// Dup is the probability a message arrives twice.
	Dup float64
	// Reorder is the per-copy probability of release from the
	// per-destination FIFO, with an extra delay uniform in
	// (0, ReorderBy] so later traffic can overtake it.
	Reorder   float64
	ReorderBy sim.Time
	// Jitter adds a uniform extra latency in [0, Jitter] to every copy.
	Jitter sim.Time
	// Down lists outage windows; a message sent inside one is dropped
	// before any random draw.
	Down []Window
}

func (l LinkFaults) zero() bool {
	return l.Drop == 0 && l.Dup == 0 && l.Reorder == 0 &&
		l.Jitter == 0 && len(l.Down) == 0
}

// Plan is a declarative fault specification: a default mix, per-link
// overrides, and targeted drop scripts.
type Plan struct {
	Default LinkFaults
	Links   map[Link]LinkFaults
	Scripts []Script
}

// Zero reports whether the plan can never perturb anything. The
// injector short-circuits Judge for zero plans, making an attached
// zero-fault plane provably byte-identical to no plane at all.
func (p Plan) Zero() bool {
	if !p.Default.zero() {
		return false
	}
	for _, lf := range p.Links {
		if !lf.zero() {
			return false
		}
	}
	return len(p.Scripts) == 0
}

// Injector is the runtime form of a Plan: it owns the seeded RNG and
// the per-link delivery counters. It implements net.FaultPlane. Not
// safe for concurrent use — like everything else in a simulated world,
// it belongs to that world's one goroutine.
type Injector struct {
	plan    Plan
	seed    uint64
	zero    bool
	rng     *sim.Rand
	sent    map[Link]uint64
	scripts map[Link][]uint64 // sorted Nth lists per link
}

// New builds an injector for plan, with every random draw derived from
// seed. The same (plan, seed) always yields the same fault schedule.
func New(plan Plan, seed uint64) *Injector {
	in := &Injector{
		plan: plan,
		seed: seed,
		zero: plan.Zero(),
		rng:  sim.NewRand(seed),
		sent: make(map[Link]uint64),
	}
	if len(plan.Scripts) > 0 {
		in.scripts = make(map[Link][]uint64)
		for _, s := range plan.Scripts {
			lk := Link{s.Src, s.Dst}
			in.scripts[lk] = append(in.scripts[lk], s.Nth)
		}
		for lk := range in.scripts {
			ns := in.scripts[lk]
			sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		}
	}
	return in
}

// Seed returns the seed the injector was built with — print it next to
// any failure so the run can be replayed.
func (in *Injector) Seed() uint64 { return in.seed }

// float returns a uniform draw in [0, 1) from the seeded stream.
func (in *Injector) float() float64 {
	return float64(in.rng.Uint64()>>11) / (1 << 53)
}

// Judge implements net.FaultPlane. Draw order is fixed; see the package
// comment.
func (in *Injector) Judge(src, dst int, at sim.Time) net.Verdict {
	if in.zero {
		return net.Verdict{N: 1}
	}
	lk := Link{src, dst}
	nth := in.sent[lk] + 1
	in.sent[lk] = nth
	lf, ok := in.plan.Links[lk]
	if !ok {
		lf = in.plan.Default
	}
	for _, w := range lf.Down {
		if at >= w.From && at < w.Until {
			return net.Verdict{} // link dead at send time; no draw
		}
	}
	for _, n := range in.scripts[lk] {
		if n == nth {
			return net.Verdict{} // scripted drop; no draw
		}
		if n > nth {
			break
		}
	}
	if lf.Drop > 0 && in.float() < lf.Drop {
		return net.Verdict{}
	}
	v := net.Verdict{N: 1}
	if lf.Dup > 0 && in.float() < lf.Dup {
		v.N = 2
	}
	for i := 0; i < v.N; i++ {
		var a net.Arrival
		if lf.Jitter > 0 {
			a.Delay = sim.Time(in.rng.Uint64() % uint64(lf.Jitter+1))
		}
		if lf.Reorder > 0 && in.float() < lf.Reorder {
			a.Unordered = true
			if lf.ReorderBy > 0 {
				a.Delay += 1 + sim.Time(in.rng.Uint64()%uint64(lf.ReorderBy))
			}
		}
		v.Copies[i] = a
	}
	return v
}

// injectorState is the opaque snapshot payload.
type injectorState struct {
	rng  uint64
	sent map[Link]uint64
}

// SnapshotState implements net.FaultPlane: it captures the RNG position
// and the per-link delivery counters.
func (in *Injector) SnapshotState() any {
	sent := make(map[Link]uint64, len(in.sent))
	for k, v := range in.sent {
		sent[k] = v
	}
	return injectorState{rng: in.rng.State(), sent: sent}
}

// RestoreState implements net.FaultPlane: it rewinds to a state
// captured by SnapshotState on the same injector type.
func (in *Injector) RestoreState(state any) error {
	st, ok := state.(injectorState)
	if !ok {
		return fmt.Errorf("fault: restore: state %T is not an injector snapshot", state)
	}
	in.rng.SetState(st.rng)
	in.sent = make(map[Link]uint64, len(st.sent))
	for k, v := range st.sent {
		in.sent[k] = v
	}
	return nil
}