package isa

import (
	"strings"
	"testing"

	"uldma/internal/vm"
)

var testSymbols = map[string]vm.VAddr{
	"A": 0x1_0001_0000,
	"B": 0x1_0002_0000,
}

func TestAssembleFigure7(t *testing.T) {
	src := `
		# Figure 7: repeated passing, 5 accesses with barriers
		store B 64
		mb
		load A
		store B 64 ; mb ; load A
		load B
	`
	prog, err := Assemble(src, testSymbols)
	if err != nil {
		t.Fatal(err)
	}
	if prog.BusAccesses() != 5 || prog.Stores() != 2 || prog.Loads() != 3 {
		t.Fatalf("shape: %d accesses, %d stores, %d loads",
			prog.BusAccesses(), prog.Stores(), prog.Loads())
	}
	if prog[0].Addr != testSymbols["B"] || prog[0].Val != 64 {
		t.Fatalf("first instruction: %v", prog[0])
	}
	if prog[1].Op != OpMB || prog[4].Op != OpMB {
		t.Fatalf("barriers misplaced: %s", prog.Disassemble())
	}
}

func TestAssembleTerseAndLiterals(t *testing.T) {
	prog, err := Assemble("s 0x1000 0xff; l 0x1000; x 0x2000 7; mb", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog) != 4 {
		t.Fatalf("len = %d", len(prog))
	}
	if prog[0].Addr != 0x1000 || prog[0].Val != 0xff {
		t.Fatalf("store literal: %v", prog[0])
	}
	if prog[2].Op != OpSwap || prog[2].Val != 7 {
		t.Fatalf("swap: %v", prog[2])
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"", "empty program"},
		{"# only comments\n", "empty program"},
		{"frob A", "unknown mnemonic"},
		{"store A", "needs a value"},
		{"store A 1 2", "exactly"},
		{"load", "needs an address"},
		{"load A B", "exactly"},
		{"mb now", "no operands"},
		{"load NOPE", `unknown symbol "NOPE"`},
		{"load 0xzz", "bad address literal"},
		{"store A twelve", `bad value "twelve"`},
	}
	for _, c := range cases {
		_, err := Assemble(c.src, testSymbols)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Assemble(%q) err = %v, want substring %q", c.src, err, c.want)
		}
	}
	// Error messages name the known symbols, sorted.
	_, err := Assemble("load NOPE", testSymbols)
	if !strings.Contains(err.Error(), "A, B") {
		t.Errorf("symbol listing missing: %v", err)
	}
}

func TestAssembleLineNumbers(t *testing.T) {
	_, err := Assemble("load A\nstore B\n", testSymbols)
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("line number missing: %v", err)
	}
}

// Round trip: an assembled program executes like a hand-built one.
func TestAssembledProgramRuns(t *testing.T) {
	prog, err := Assemble("store A 5\nload A", testSymbols)
	if err != nil {
		t.Fatal(err)
	}
	x := &scriptExec{loadVals: []uint64{5}}
	vals, err := Run(x, prog)
	if err != nil || len(vals) != 1 || vals[0] != 5 {
		t.Fatalf("vals=%v err=%v", vals, err)
	}
}
