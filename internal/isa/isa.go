// Package isa gives the user-level DMA initiation sequences a concrete,
// inspectable form: short straight-line programs of LOAD / STORE / MB
// instructions.
//
// The paper's headline claim is that "a DMA operation can be initiated
// in 2 to 5 assembly instructions". Representing each method's sequence
// as data lets the test suite verify those counts directly (experiment
// X2), lets the attack studies interleave victim and adversary
// instruction-by-instruction under a scripted scheduler, and lets the
// tools print faithful disassembly of what each method executes.
//
// Control flow (the retry loop of Figure 7) stays at the library level:
// a method compiles one straight-line attempt; retrying re-runs it.
package isa

import (
	"fmt"
	"strings"

	"uldma/internal/phys"
	"uldma/internal/vm"
)

// Op is an instruction opcode. Only the three user-mode instructions the
// paper's sequences use are represented; syscalls and PAL calls are
// modelled as higher-level operations on the process context.
type Op uint8

// Opcodes.
const (
	// OpLoad reads Size bytes at Addr; the loaded value is appended to
	// the run's result list (the sequences use it for DMA status).
	OpLoad Op = iota
	// OpStore writes Val (Size bytes) at Addr.
	OpStore
	// OpMB is the Alpha memory-barrier instruction: it drains the write
	// buffer so every prior store reaches the bus before execution
	// continues. Required by the repeated-passing protocol (§3.4).
	OpMB
	// OpSwap is an atomic exchange-style read-modify-write: it sends Val
	// to Addr and yields the returned value (appended to the run's
	// results like a load). SHRIMP's first solution initiates a DMA with
	// a single such compare-and-exchange access (§2.4), and user-level
	// atomic operations ride on it (§3.5).
	OpSwap
)

// String names the opcode in Alpha assembly style.
func (o Op) String() string {
	switch o {
	case OpLoad:
		return "LOAD"
	case OpStore:
		return "STORE"
	case OpMB:
		return "MB"
	case OpSwap:
		return "SWAP"
	default:
		return fmt.Sprintf("OP(%d)", uint8(o))
	}
}

// Instr is one instruction of an initiation sequence. All operands are
// resolved constants: sequences are compiled for a specific DMA request
// (source, destination, size) against a specific process's mappings.
type Instr struct {
	Op      Op
	Addr    vm.VAddr        // effective virtual address (load/store)
	Size    phys.AccessSize // access width (load/store)
	Val     uint64          // store data
	Comment string          // disassembly annotation, e.g. "pass size to shadow(vdst)"
}

// String disassembles the instruction.
func (i Instr) String() string {
	var s string
	switch i.Op {
	case OpLoad:
		s = fmt.Sprintf("LOAD  r0, %v", i.Addr)
	case OpStore:
		s = fmt.Sprintf("STORE %#x, %v", i.Val, i.Addr)
	case OpMB:
		s = "MB"
	case OpSwap:
		s = fmt.Sprintf("SWAP  r0, %#x, %v", i.Val, i.Addr)
	default:
		s = i.Op.String()
	}
	if i.Comment != "" {
		s += " ; " + i.Comment
	}
	return s
}

// Load constructs a load instruction.
func Load(addr vm.VAddr, size phys.AccessSize, comment string) Instr {
	return Instr{Op: OpLoad, Addr: addr, Size: size, Comment: comment}
}

// Store constructs a store instruction.
func Store(addr vm.VAddr, size phys.AccessSize, val uint64, comment string) Instr {
	return Instr{Op: OpStore, Addr: addr, Size: size, Val: val, Comment: comment}
}

// MB constructs a memory-barrier instruction.
func MB(comment string) Instr {
	return Instr{Op: OpMB, Comment: comment}
}

// Swap constructs an atomic-exchange instruction.
func Swap(addr vm.VAddr, size phys.AccessSize, val uint64, comment string) Instr {
	return Instr{Op: OpSwap, Addr: addr, Size: size, Val: val, Comment: comment}
}

// Program is a straight-line instruction sequence.
type Program []Instr

// Len returns the instruction count, including barriers.
func (p Program) Len() int { return len(p) }

// BusAccesses returns how many instructions generate a bus transaction
// toward the device (loads, stores and swaps; MB only orders).
func (p Program) BusAccesses() int {
	n := 0
	for _, i := range p {
		if i.Op == OpLoad || i.Op == OpStore || i.Op == OpSwap {
			n++
		}
	}
	return n
}

// Loads returns the number of load instructions.
func (p Program) Loads() int {
	n := 0
	for _, i := range p {
		if i.Op == OpLoad {
			n++
		}
	}
	return n
}

// Stores returns the number of store instructions.
func (p Program) Stores() int {
	n := 0
	for _, i := range p {
		if i.Op == OpStore {
			n++
		}
	}
	return n
}

// Disassemble renders the whole program, one instruction per line,
// numbered from 1 like the paper's listings.
func (p Program) Disassemble() string {
	var b strings.Builder
	for n, i := range p {
		fmt.Fprintf(&b, "%2d: %s\n", n+1, i.String())
	}
	return b.String()
}

// Executor runs individual instructions. It is implemented by the
// process context (user-mode execution with preemption points) and by
// bare-CPU harnesses in tests.
type Executor interface {
	Load(addr vm.VAddr, size phys.AccessSize) (uint64, error)
	Store(addr vm.VAddr, size phys.AccessSize, val uint64) error
	MB() error
	Swap(addr vm.VAddr, size phys.AccessSize, val uint64) (uint64, error)
}

// RunLast executes p on x like Run but returns only the LAST value a
// load (or swap) produced, with ok reporting whether there was one. It
// never allocates, which matters on the per-message DMA initiation
// path: Run's result slice was one heap allocation per initiation.
func RunLast(x Executor, p Program) (last uint64, ok bool, err error) {
	for n, i := range p {
		switch i.Op {
		case OpLoad:
			v, e := x.Load(i.Addr, i.Size)
			if e != nil {
				return last, ok, fmt.Errorf("isa: instruction %d (%s): %w", n+1, i, e)
			}
			last, ok = v, true
		case OpStore:
			if e := x.Store(i.Addr, i.Size, i.Val); e != nil {
				return last, ok, fmt.Errorf("isa: instruction %d (%s): %w", n+1, i, e)
			}
		case OpMB:
			if e := x.MB(); e != nil {
				return last, ok, fmt.Errorf("isa: instruction %d (%s): %w", n+1, i, e)
			}
		case OpSwap:
			v, e := x.Swap(i.Addr, i.Size, i.Val)
			if e != nil {
				return last, ok, fmt.Errorf("isa: instruction %d (%s): %w", n+1, i, e)
			}
			last, ok = v, true
		default:
			return last, ok, fmt.Errorf("isa: instruction %d: unknown opcode %v", n+1, i.Op)
		}
	}
	return last, ok, nil
}

// Run executes p on x and returns the values produced by the program's
// load instructions, in program order. Execution stops at the first
// instruction error.
func Run(x Executor, p Program) ([]uint64, error) {
	var loads []uint64
	for n, i := range p {
		switch i.Op {
		case OpLoad:
			v, err := x.Load(i.Addr, i.Size)
			if err != nil {
				return loads, fmt.Errorf("isa: instruction %d (%s): %w", n+1, i, err)
			}
			loads = append(loads, v)
		case OpStore:
			if err := x.Store(i.Addr, i.Size, i.Val); err != nil {
				return loads, fmt.Errorf("isa: instruction %d (%s): %w", n+1, i, err)
			}
		case OpMB:
			if err := x.MB(); err != nil {
				return loads, fmt.Errorf("isa: instruction %d (%s): %w", n+1, i, err)
			}
		case OpSwap:
			v, err := x.Swap(i.Addr, i.Size, i.Val)
			if err != nil {
				return loads, fmt.Errorf("isa: instruction %d (%s): %w", n+1, i, err)
			}
			loads = append(loads, v)
		default:
			return loads, fmt.Errorf("isa: instruction %d: unknown opcode %v", n+1, i.Op)
		}
	}
	return loads, nil
}
