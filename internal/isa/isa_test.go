package isa

import (
	"errors"
	"strings"
	"testing"

	"uldma/internal/phys"
	"uldma/internal/vm"
)

// scriptExec records executed operations and returns scripted load values.
type scriptExec struct {
	ops      []string
	loadVals []uint64
	loadIdx  int
	failAt   int // 1-based op index to fail at; 0 = never
	count    int
}

func (e *scriptExec) step(op string) error {
	e.count++
	e.ops = append(e.ops, op)
	if e.failAt != 0 && e.count == e.failAt {
		return errors.New("injected failure")
	}
	return nil
}

func (e *scriptExec) Load(addr vm.VAddr, size phys.AccessSize) (uint64, error) {
	if err := e.step("L"); err != nil {
		return 0, err
	}
	v := uint64(0)
	if e.loadIdx < len(e.loadVals) {
		v = e.loadVals[e.loadIdx]
	}
	e.loadIdx++
	return v, nil
}

func (e *scriptExec) Store(addr vm.VAddr, size phys.AccessSize, val uint64) error {
	return e.step("S")
}

func (e *scriptExec) MB() error { return e.step("M") }

func (e *scriptExec) Swap(addr vm.VAddr, size phys.AccessSize, val uint64) (uint64, error) {
	if err := e.step("X"); err != nil {
		return 0, err
	}
	v := uint64(0)
	if e.loadIdx < len(e.loadVals) {
		v = e.loadVals[e.loadIdx]
	}
	e.loadIdx++
	return v, nil
}

func TestOpString(t *testing.T) {
	if OpLoad.String() != "LOAD" || OpStore.String() != "STORE" || OpMB.String() != "MB" {
		t.Fatal("opcode names wrong")
	}
	if got := Op(99).String(); !strings.Contains(got, "99") {
		t.Fatalf("unknown opcode renders as %q", got)
	}
}

func TestInstrString(t *testing.T) {
	s := Store(0x1000, phys.Size64, 0x40, "pass size").String()
	if !strings.Contains(s, "STORE") || !strings.Contains(s, "0x40") || !strings.Contains(s, "pass size") {
		t.Fatalf("store disassembly: %q", s)
	}
	l := Load(0x2000, phys.Size64, "").String()
	if !strings.Contains(l, "LOAD") || !strings.Contains(l, "0x2000") || strings.Contains(l, ";") {
		t.Fatalf("load disassembly: %q", l)
	}
	if MB("drain").String() != "MB ; drain" {
		t.Fatalf("MB disassembly: %q", MB("drain").String())
	}
}

func rep5Program() Program {
	// The Figure 7 shape: STORE, LOAD, STORE, LOAD, LOAD with barriers.
	return Program{
		Store(0x2000, phys.Size64, 64, "size to shadow(vdst)"),
		MB(""),
		Load(0x1000, phys.Size64, "status from shadow(vsrc)"),
		Store(0x2000, phys.Size64, 64, "size to shadow(vdst) again"),
		MB(""),
		Load(0x1000, phys.Size64, "status again"),
		Load(0x2000, phys.Size64, "final status from shadow(vdst)"),
	}
}

func TestProgramCounts(t *testing.T) {
	p := rep5Program()
	if p.Len() != 7 {
		t.Fatalf("Len = %d", p.Len())
	}
	if p.BusAccesses() != 5 {
		t.Fatalf("BusAccesses = %d, want 5 (the paper's 5-instruction sequence)", p.BusAccesses())
	}
	if p.Loads() != 3 || p.Stores() != 2 {
		t.Fatalf("Loads=%d Stores=%d, want 3/2", p.Loads(), p.Stores())
	}
}

func TestDisassembleNumbersLines(t *testing.T) {
	d := rep5Program().Disassemble()
	lines := strings.Split(strings.TrimRight(d, "\n"), "\n")
	if len(lines) != 7 {
		t.Fatalf("disassembly has %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], " 1: STORE") {
		t.Fatalf("first line %q", lines[0])
	}
	if !strings.HasPrefix(lines[6], " 7: LOAD") {
		t.Fatalf("last line %q", lines[6])
	}
}

func TestRunOrderAndLoadValues(t *testing.T) {
	x := &scriptExec{loadVals: []uint64{10, 20, 30}}
	vals, err := Run(x, rep5Program())
	if err != nil {
		t.Fatal(err)
	}
	want := "S M L S M L L"
	if got := strings.Join(x.ops, " "); got != want {
		t.Fatalf("execution order %q, want %q", got, want)
	}
	if len(vals) != 3 || vals[0] != 10 || vals[1] != 20 || vals[2] != 30 {
		t.Fatalf("load values = %v", vals)
	}
}

func TestRunStopsAtFirstError(t *testing.T) {
	x := &scriptExec{failAt: 3} // first LOAD fails
	vals, err := Run(x, rep5Program())
	if err == nil {
		t.Fatal("injected failure not surfaced")
	}
	if !strings.Contains(err.Error(), "instruction 3") {
		t.Fatalf("error does not name the failing instruction: %v", err)
	}
	if len(x.ops) != 3 {
		t.Fatalf("execution continued after failure: %v", x.ops)
	}
	if len(vals) != 0 {
		t.Fatalf("partial loads returned: %v", vals)
	}
}

func TestSwapInstruction(t *testing.T) {
	// SHRIMP-1: the entire DMA initiation is one compare-and-exchange.
	p := Program{Swap(0x1000, phys.Size64, 4096, "size via C&E; dst is the mapped-out page")}
	if p.BusAccesses() != 1 || p.Len() != 1 {
		t.Fatalf("SHRIMP-1 program: %d instrs / %d accesses, want 1/1", p.Len(), p.BusAccesses())
	}
	if s := p[0].String(); !strings.Contains(s, "SWAP") || !strings.Contains(s, "0x1000") {
		t.Fatalf("swap disassembly: %q", s)
	}
	x := &scriptExec{loadVals: []uint64{4096}}
	vals, err := Run(x, p)
	if err != nil || len(vals) != 1 || vals[0] != 4096 {
		t.Fatalf("swap run: vals=%v err=%v", vals, err)
	}
	if OpSwap.String() != "SWAP" {
		t.Fatal("OpSwap name wrong")
	}
}

func TestRunUnknownOpcode(t *testing.T) {
	p := Program{{Op: Op(42)}}
	if _, err := Run(&scriptExec{}, p); err == nil {
		t.Fatal("unknown opcode accepted")
	}
}

func TestEmptyProgram(t *testing.T) {
	vals, err := Run(&scriptExec{}, nil)
	if err != nil || len(vals) != 0 {
		t.Fatalf("empty program: vals=%v err=%v", vals, err)
	}
}
