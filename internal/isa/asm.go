package isa

import (
	"fmt"
	"strconv"
	"strings"

	"uldma/internal/phys"
	"uldma/internal/vm"
)

// Assemble parses a textual initiation sequence into a Program. The
// attacksim tool uses it to let researchers script custom victim and
// adversary sequences without recompiling.
//
// Grammar (one instruction per line or semicolon; '#' starts a comment;
// case-insensitive mnemonics):
//
//	store <addr> <val>   posted store of <val>
//	load  <addr>         load (value lands in the run's results)
//	swap  <addr> <val>   atomic exchange
//	mb                   memory barrier
//
// <addr> is a symbol resolved through the provided table (e.g. the
// attack scenario maps "A", "B", "C", "FOO" to shadow addresses) or a
// 0x-prefixed literal; <val> is decimal or 0x-hex.
func Assemble(src string, symbols map[string]vm.VAddr) (Program, error) {
	var prog Program
	lineNo := 0
	for _, rawLine := range strings.Split(src, "\n") {
		lineNo++
		for _, stmt := range strings.Split(rawLine, ";") {
			if i := strings.IndexByte(stmt, '#'); i >= 0 {
				stmt = stmt[:i]
			}
			fields := strings.Fields(stmt)
			if len(fields) == 0 {
				continue
			}
			ins, err := assembleOne(fields, symbols)
			if err != nil {
				return nil, fmt.Errorf("isa: line %d: %w", lineNo, err)
			}
			prog = append(prog, ins)
		}
	}
	if len(prog) == 0 {
		return nil, fmt.Errorf("isa: empty program")
	}
	return prog, nil
}

func assembleOne(fields []string, symbols map[string]vm.VAddr) (Instr, error) {
	op := strings.ToLower(fields[0])
	operands := fields[1:]
	needAddr := func() (vm.VAddr, error) {
		if len(operands) < 1 {
			return 0, fmt.Errorf("%s needs an address operand", op)
		}
		return resolveAddr(operands[0], symbols)
	}
	needVal := func() (uint64, error) {
		if len(operands) < 2 {
			return 0, fmt.Errorf("%s needs a value operand", op)
		}
		return parseVal(operands[1])
	}
	switch op {
	case "store", "s":
		addr, err := needAddr()
		if err != nil {
			return Instr{}, err
		}
		val, err := needVal()
		if err != nil {
			return Instr{}, err
		}
		if len(operands) > 2 {
			return Instr{}, fmt.Errorf("store takes exactly (addr, val)")
		}
		return Store(addr, phys.Size64, val, ""), nil
	case "load", "l":
		addr, err := needAddr()
		if err != nil {
			return Instr{}, err
		}
		if len(operands) > 1 {
			return Instr{}, fmt.Errorf("load takes exactly (addr)")
		}
		return Load(addr, phys.Size64, ""), nil
	case "swap", "x":
		addr, err := needAddr()
		if err != nil {
			return Instr{}, err
		}
		val, err := needVal()
		if err != nil {
			return Instr{}, err
		}
		return Swap(addr, phys.Size64, val, ""), nil
	case "mb":
		if len(operands) != 0 {
			return Instr{}, fmt.Errorf("mb takes no operands")
		}
		return MB(""), nil
	default:
		return Instr{}, fmt.Errorf("unknown mnemonic %q", fields[0])
	}
}

func resolveAddr(tok string, symbols map[string]vm.VAddr) (vm.VAddr, error) {
	if a, ok := symbols[tok]; ok {
		return a, nil
	}
	if strings.HasPrefix(tok, "0x") || strings.HasPrefix(tok, "0X") {
		v, err := strconv.ParseUint(tok[2:], 16, 64)
		if err != nil {
			return 0, fmt.Errorf("bad address literal %q", tok)
		}
		return vm.VAddr(v), nil
	}
	return 0, fmt.Errorf("unknown symbol %q (known: %s)", tok, symbolNames(symbols))
}

func parseVal(tok string) (uint64, error) {
	base := 10
	digits := tok
	if strings.HasPrefix(tok, "0x") || strings.HasPrefix(tok, "0X") {
		base, digits = 16, tok[2:]
	}
	v, err := strconv.ParseUint(digits, base, 64)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", tok)
	}
	return v, nil
}

func symbolNames(symbols map[string]vm.VAddr) string {
	names := make([]string, 0, len(symbols))
	for n := range symbols {
		names = append(names, n)
	}
	if len(names) == 0 {
		return "none"
	}
	// Sort for stable error messages.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return strings.Join(names, ", ")
}
