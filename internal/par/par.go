// Package par is the repository's bounded worker-pool and
// deterministic-merge layer.
//
// Every quantitative artifact in this repository is produced by running
// many *independent, deterministic* simulated worlds: one world per
// (method, config, seed) measurement cell, one world per explored
// schedule prefix, one world per adversarial campaign. Worlds share no
// mutable state — each owns its clock, memory, bus, engine and guest
// goroutines — so they parallelize perfectly across host cores, while
// each individual world stays single-goroutine and bit-for-bit
// deterministic.
//
// The contract this package enforces:
//
//   - Order preservation: Map returns results in job-index order, so a
//     parallel sweep emits byte-identical tables to a serial one.
//   - Deterministic first-error propagation: the error returned is the
//     error of the LOWEST-INDEXED failing job, regardless of which
//     worker hit an error first on the wall clock.
//   - Bounded workers: at most W jobs run concurrently; W <= 1 degrades
//     to a plain serial loop with no goroutines at all.
//   - Cancellation: a context cancels the pool between jobs; the
//     lowest-indexed error still wins over the cancellation error when
//     both occur.
//   - Seed splitting: SplitSeed derives statistically independent
//     per-job RNG seeds from one base seed, so seeded experiments
//     shard without correlated streams.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count request: values <= 0 select
// runtime.GOMAXPROCS(0) (the tools' -procs default).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Do runs fn(0) .. fn(n-1) on at most workers concurrent goroutines and
// waits for completion. If any job fails, Do returns the error of the
// lowest-indexed failing job; jobs with higher indices than a known
// failure are skipped (their worlds are independent, so skipping cannot
// change lower-indexed results).
func Do(n, workers int, fn func(i int) error) error {
	return DoCtx(context.Background(), n, workers, fn)
}

// DoCtx is Do with cancellation: when ctx is cancelled no new jobs
// start, and ctx.Err() is returned unless a lower-indexed job error
// supersedes it.
func DoCtx(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		// Serial fast path: no goroutines, no atomics.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next     atomic.Int64 // next job index to hand out
		firstErr atomic.Int64 // lowest failing index so far (n = none)
		mu       sync.Mutex
		errs     map[int]error
		wg       sync.WaitGroup
	)
	firstErr.Store(int64(n))
	record := func(i int, err error) {
		mu.Lock()
		if errs == nil {
			errs = make(map[int]error)
		}
		errs[i] = err
		mu.Unlock()
		for {
			cur := firstErr.Load()
			if int64(i) >= cur {
				return
			}
			if firstErr.CompareAndSwap(cur, int64(i)) {
				return
			}
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				if int64(i) > firstErr.Load() {
					// A lower-indexed job already failed; this job's
					// outcome can no longer matter.
					continue
				}
				if ctx.Err() != nil {
					return
				}
				if err := fn(i); err != nil {
					record(i, err)
				}
			}
		}()
	}
	wg.Wait()
	if idx := firstErr.Load(); idx < int64(n) {
		mu.Lock()
		defer mu.Unlock()
		return errs[int(idx)]
	}
	return ctx.Err()
}

// Map runs fn for every index in [0, n) on at most workers concurrent
// goroutines and returns the results in index order. Error semantics
// match Do: the lowest-indexed job error wins and nil results are
// returned alongside it.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	return MapCtx(context.Background(), n, workers, fn)
}

// MapCtx is Map with cancellation.
func MapCtx[T any](ctx context.Context, n, workers int, fn func(i int) (T, error)) ([]T, error) {
	if n < 0 {
		n = 0
	}
	out := make([]T, n)
	err := DoCtx(ctx, n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SplitSeed derives the i-th child seed from a base seed using a
// SplitMix64-style finalizer over (base, i). Children of one base are
// statistically independent streams, and the derivation is pure: the
// same (base, i) always yields the same child, regardless of worker
// scheduling — the property that keeps seeded parallel sweeps
// reproducible.
func SplitSeed(base uint64, i int) uint64 {
	z := base + 0x9e3779b97f4a7c15*uint64(i+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
