package par

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestMapOrderPreserved: results come back in job-index order no matter
// how workers interleave.
func TestMapOrderPreserved(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 9} {
		got, err := Map(100, workers, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestLowestIndexedErrorWins: the error propagated is deterministic —
// always from the lowest failing index, never from whichever worker
// failed first on the wall clock.
func TestLowestIndexedErrorWins(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		err := Do(50, 8, func(i int) error {
			if i == 7 || i == 31 || i == 49 {
				return fmt.Errorf("job %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "job 7 failed" {
			t.Fatalf("trial %d: err = %v, want job 7's", trial, err)
		}
	}
}

// TestJobsBelowErrorAllRun: every job with an index below the failing
// one completes even when higher jobs are skipped.
func TestJobsBelowErrorAllRun(t *testing.T) {
	var ran [40]atomic.Bool
	err := Do(40, 4, func(i int) error {
		ran[i].Store(true)
		if i == 20 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	for i := 0; i <= 20; i++ {
		if !ran[i].Load() {
			t.Fatalf("job %d below the failure did not run", i)
		}
	}
}

// TestWorkersBound: no more than W jobs are ever in flight.
func TestWorkersBound(t *testing.T) {
	const w = 3
	var cur, peak atomic.Int64
	err := Do(64, w, func(i int) error {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak.Load() > w {
		t.Fatalf("peak concurrency %d exceeds %d workers", peak.Load(), w)
	}
}

// TestSerialFastPathRunsInOrder: workers <= 1 degrades to an in-order
// loop on the calling goroutine.
func TestSerialFastPathRunsInOrder(t *testing.T) {
	var order []int
	err := Do(10, 1, func(i int) error {
		order = append(order, i) // safe: serial path has no goroutines
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order %v", order)
		}
	}
	// Serial error path stops at the first failure.
	count := 0
	err = Do(10, 1, func(i int) error {
		count++
		if i == 3 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil || count != 4 {
		t.Fatalf("serial stop: err=%v count=%d", err, count)
	}
}

// TestCancellation: a cancelled context stops the pool and surfaces
// ctx.Err() when no job error precedes it.
func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	var once sync.Once
	err := DoCtx(ctx, 1000, 4, func(i int) error {
		ran.Add(1)
		once.Do(cancel)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Fatalf("cancellation did not stop the pool (%d jobs ran)", n)
	}
}

// TestMapDeterministicAcrossWorkerCounts: a pure job function yields
// byte-identical outputs for any worker count — the property the sweep
// parity tests depend on.
func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	job := func(i int) (uint64, error) {
		// A deterministic pseudo-computation.
		return SplitSeed(0xdeadbeef, i), nil
	}
	ref, err := Map(64, 1, job)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 16} {
		got, err := Map(64, w, job)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: result %d differs", w, i)
			}
		}
	}
}

// TestSplitSeed: children are deterministic, distinct from each other
// and from the base.
func TestSplitSeed(t *testing.T) {
	seen := map[uint64]int{}
	const base = 42
	for i := 0; i < 1000; i++ {
		s := SplitSeed(base, i)
		if s == base {
			t.Fatalf("child %d equals base", i)
		}
		if j, dup := seen[s]; dup {
			t.Fatalf("children %d and %d collide", i, j)
		}
		seen[s] = i
		if s != SplitSeed(base, i) {
			t.Fatalf("child %d not deterministic", i)
		}
	}
	if SplitSeed(1, 0) == SplitSeed(2, 0) {
		t.Fatal("different bases produced the same child 0")
	}
}

// TestZeroJobs: empty input is a no-op for any worker count.
func TestZeroJobs(t *testing.T) {
	if err := Do(0, 8, func(int) error { t.Fatal("ran"); return nil }); err != nil {
		t.Fatal(err)
	}
	out, err := Map(0, 8, func(int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}
