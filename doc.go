// Package uldma is a full-system reproduction of Markatos & Katevenis,
// "User-Level DMA without Operating System Kernel Modification"
// (HPCA-3, 1997).
//
// The repository contains a deterministic, cycle-cost-accurate model of
// the paper's testbed — a DEC Alpha 3000/300 workstation with a
// Telegraphos-style network interface on a 12.5 MHz TurboChannel bus —
// and, on top of it, every DMA initiation scheme the paper describes:
// the kernel baseline, the SHRIMP and FLASH comparators, the PAL-code
// method, key-based DMA, extended shadow addressing, and repeated
// passing of arguments, plus the user-level atomic operations of §3.5.
//
// Layout:
//
//	internal/sim, phys, bus, vm, isa, cpu  hardware substrates
//	internal/proc, kernel                  processes + operating system
//	internal/dma, net                      the NIC's DMA engine + cluster fabric
//	internal/machine                       composition + calibrated presets
//	internal/core  (package userdma)       the paper's contribution
//	cmd/dmabench, attacksim, oslat,
//	cmd/clustersim                         experiment binaries
//	examples/...                           runnable walkthroughs
//
// bench_test.go in this directory regenerates the paper's Table 1 and
// the figure studies under `go test -bench`. See DESIGN.md for the
// system inventory and EXPERIMENTS.md for paper-vs-measured results.
package uldma
