// Command dmabench regenerates the paper's Table 1 — "Comparison of DMA
// initiation algorithms" — on the calibrated Alpha 3000/300 +
// TurboChannel machine model, and optionally the bus-frequency sweep
// (experiment X4) and the register-context contention study.
//
// Usage:
//
//	dmabench [-iters N] [-sweep] [-contention] [-comparators] [-ring] [-ringchurn] [-va [-tlb E]] [-paging] [-steer] [-procs W] [-json]
//
// The default -iters 1000 matches the paper's measurement loop. Every
// section is one experiment from the internal/exp registry (-list
// enumerates them); independent measurement cells (one simulated
// machine each) run on -procs worker goroutines (default: GOMAXPROCS)
// with byte-identical output for any worker count. -json emits the raw
// numbers (simulated picoseconds) as one JSON document for snapshotting
// and regression comparison.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	userdma "uldma/internal/core"
	"uldma/internal/exp"
	"uldma/internal/obs"
	"uldma/internal/proc"
	"uldma/internal/stats"
	"uldma/internal/trace"
	"uldma/internal/vm"
)

func main() {
	iters := flag.Int("iters", 1000, "DMA initiations per method (paper: 1000)")
	sweep := flag.Bool("sweep", false, "also run the bus-frequency sweep (X4)")
	contention := flag.Bool("contention", false, "also run the register-context contention study")
	comparators := flag.Bool("comparators", false, "also measure the comparator methods (SHRIMP, FLASH, PAL)")
	breakeven := flag.Bool("breakeven", false, "also run the initiation-vs-transfer break-even sweep (X6)")
	ring := flag.Bool("ring", false, "also run the descriptor-ring depth sweep (batched initiation)")
	ringchurn := flag.Bool("ringchurn", false, "also run the register-context churn study (ring processes vs contexts)")
	va := flag.Bool("va", false, "also run the virtual-address sweep (Table 1 through the IOMMU + IOTLB hit rate)")
	paging := flag.Bool("paging", false, "also run the device-paging study (recovery policies under oversubscription)")
	steer := flag.Bool("steer", false, "also run the steered sweeps (adaptive search replacing the exhaustive grids)")
	tlb := flag.Int("tlb", 0, "with -va: IOTLB entries for the hit-rate sweep (0 = 8)")
	traceFlag := flag.Bool("trace", false, "show the bus transactions of one initiation per method")
	trend := flag.Bool("trend", false, "also run the hardware-generation trend sweep (X7)")
	metrics := flag.Bool("metrics", false, "with -json: append the per-method observability registry snapshot (exact event counts)")
	procs := flag.Int("procs", 0, "worker goroutines for independent measurement cells (0 = GOMAXPROCS)")
	jsonOut := flag.Bool("json", false, "emit results as one JSON document (raw simulated picoseconds)")
	list := flag.Bool("list", false, "list the registered experiments and exit")
	flag.Parse()
	stop, err := exp.StartProfiles()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmabench:", err)
		os.Exit(2)
	}
	defer stop()

	if *list {
		fmt.Print(exp.List())
		return
	}

	// The VA flags are validated before any simulation spins up, same
	// contract as clustersim's -scale frontend: nonsense dies with exit
	// status 2 and a flag-level message.
	if err := validateVA(*va, *paging, *tlb, *iters); err != nil {
		fmt.Fprintln(os.Stderr, "dmabench:", err)
		exp.Exit(2)
	}

	// With -steer the traced scenario becomes the search itself: the
	// decision track (probe/split/abort/accept) on a Perfetto timeline.
	if *steer && exp.TraceRequested() {
		exp.SetTraceScenario(exp.SteerTraceScenario)
	}

	if *jsonOut {
		if err := runJSON(*iters, *procs, *sweep, *comparators, *breakeven, *trend, *contention, *ring, *ringchurn, *va, *paging, *steer, *tlb, *metrics); err != nil {
			fmt.Fprintln(os.Stderr, "dmabench:", err)
			exp.Exit(1)
		}
		if err := exp.FlushTrace(); err != nil {
			fmt.Fprintln(os.Stderr, "dmabench:", err)
			exp.Exit(1)
		}
		return
	}

	if *trend {
		if err := section("trend", *iters, *procs); err != nil {
			fmt.Fprintln(os.Stderr, "dmabench:", err)
			exp.Exit(1)
		}
	}

	if *traceFlag {
		if err := runTrace(); err != nil {
			fmt.Fprintln(os.Stderr, "dmabench:", err)
			exp.Exit(1)
		}
	}
	if err := run(*iters, *procs, *sweep, *contention, *comparators, *breakeven, *ring, *ringchurn, *va, *paging, *steer, *tlb); err != nil {
		fmt.Fprintln(os.Stderr, "dmabench:", err)
		exp.Exit(1)
	}
	if err := exp.FlushTrace(); err != nil {
		fmt.Fprintln(os.Stderr, "dmabench:", err)
		exp.Exit(1)
	}
}

// validateVA rejects flag combinations the virtual-address sections
// cannot run, before any machine is built.
func validateVA(va, paging bool, tlb, iters int) error {
	if tlb < 0 {
		return fmt.Errorf("-tlb %d: the IOTLB needs at least one entry", tlb)
	}
	if tlb != 0 && !va {
		return fmt.Errorf("-tlb sizes the vasweep IOTLB and needs -va")
	}
	if va && iters < 1 {
		return fmt.Errorf("-iters %d: -va needs at least one initiation per cell", iters)
	}
	_ = paging // no knobs yet; the grid is fixed by the experiment spec
	return nil
}

// section runs one registry experiment and prints its text rendering.
func section(name string, iters, procs int) error {
	s, err := exp.Report(name, exp.Text, exp.Params{Iters: iters, Procs: procs})
	if err != nil {
		return err
	}
	fmt.Print(s)
	return nil
}

// benchJSON is the one JSON document -json emits: raw sim.Time values
// (picoseconds of simulated time), exact integers suitable for
// byte-for-byte regression comparison across code changes.
type benchJSON struct {
	Machine     string
	Iters       int
	Table1      []exp.InitiationRow
	Comparators []exp.InitiationRow            `json:",omitempty"`
	BusSweep    map[string][]exp.InitiationRow `json:",omitempty"`
	BreakEven   map[string][]exp.BreakEvenRow  `json:",omitempty"`
	Trend       []exp.TrendRow                 `json:",omitempty"`
	Contention  []exp.InitiationRow            `json:",omitempty"`
	Ring        []exp.RingRow                  `json:",omitempty"`
	RingChurn   []exp.ChurnRow                 `json:",omitempty"`
	VASweep     []exp.VARow                    `json:",omitempty"`
	IOTLB       []exp.IOTLBRow                 `json:",omitempty"`
	Paging      []exp.PagingRow                `json:",omitempty"`
	// Steer (-steer) is the steered-sweep scoreboard: per search, the
	// probed-vs-grid cell counts and the verdict the adaptive policy
	// landed on (see BENCH_steer.json / `make baseline-steer`).
	Steer []exp.SteerRow `json:",omitempty"`
	// Metrics (-metrics) is the per-method observability registry
	// snapshot after a fixed initiation burst: exact event counts, so
	// benchdiff flags any behavioural change even when timings agree.
	Metrics map[string][]obs.MetricValue `json:",omitempty"`
}

// runJSON gathers every requested section and emits one JSON document.
func runJSON(iters, procs int, sweep, comparators, breakeven, trend, contention, ring, ringchurn, va, paging, steer bool, tlb int, metrics bool) error {
	doc := benchJSON{Machine: exp.MachineName(), Iters: iters}

	t1, err := exp.Table1(iters, procs)
	if err != nil {
		return err
	}
	doc.Table1 = exp.InitRows(t1)
	if comparators {
		rs, err := exp.Comparators(iters, procs, exp.ComparatorMethods()[:4])
		if err != nil {
			return err
		}
		doc.Comparators = exp.InitRows(rs)
	}
	if sweep {
		groups, err := exp.BusSweep(iters, procs)
		if err != nil {
			return err
		}
		doc.BusSweep = exp.BusSweepJSON(groups)
	}
	if breakeven {
		groups, err := exp.BreakEven(procs)
		if err != nil {
			return err
		}
		doc.BreakEven = exp.BreakEvenJSON(groups)
	}
	if trend {
		pts, err := exp.TrendSweep(iters, procs)
		if err != nil {
			return err
		}
		doc.Trend = exp.TrendRows(pts)
	}
	if contention {
		rs, err := exp.Contention(iters, procs)
		if err != nil {
			return err
		}
		doc.Contention = exp.InitRows(rs)
	}
	if ring {
		r, err := exp.RunNamed("ringdepth", exp.Params{Iters: iters, Procs: procs})
		if err != nil {
			return err
		}
		doc.Ring = exp.RingRows(r)
	}
	if ringchurn {
		r, err := exp.RunNamed("ringchurn", exp.Params{Procs: procs})
		if err != nil {
			return err
		}
		doc.RingChurn = exp.ChurnRows(r)
	}
	if va {
		r, err := exp.RunNamed("vasweep", exp.Params{Iters: iters, Procs: procs, TLB: tlb})
		if err != nil {
			return err
		}
		doc.VASweep = exp.VARows(r)
		doc.IOTLB = exp.IOTLBRows(r)
	}
	if paging {
		r, err := exp.RunNamed("paging", exp.Params{Procs: procs})
		if err != nil {
			return err
		}
		doc.Paging = exp.PagingRows(r)
	}
	if steer {
		s, err := exp.RunSteerSuite(exp.Params{Iters: iters, Procs: procs}, nil)
		if err != nil {
			return err
		}
		doc.Steer = s.SteerRows()
	}
	if metrics {
		mv, err := exp.MetricsSnapshot(iters)
		if err != nil {
			return err
		}
		doc.Metrics = mv
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// runTrace records and prints the wire-level view of one initiation per
// Table 1 method: what the engine actually saw, in order, with window
// annotations.
func runTrace() error {
	for _, method := range userdma.AllMethods() {
		m := userdma.Machine(method)
		rec := trace.New(m.Clock, 64)
		rec.AnnotateEngine(m.Engine.Config())

		var h *userdma.Handle
		p := m.NewProcess("traced", func(c *proc.Context) error {
			rec.AttachBus(m.Bus)
			_, err := h.DMA(c, 0x10000, 0x20000, 64)
			rec.DetachBus(m.Bus)
			return err
		})
		var err error
		if h, err = method.Attach(m, p); err != nil {
			return err
		}
		if _, err := m.SetupPages(p, 0x10000, 1, vm.Read|vm.Write); err != nil {
			return err
		}
		dstFrames, err := m.SetupPages(p, 0x20000, 1, vm.Read|vm.Write)
		if err != nil {
			return err
		}
		if s1, ok := method.(userdma.SHRIMP1); ok {
			if err := s1.MapOutPage(m, p, 0x10000, dstFrames[0]); err != nil {
				return err
			}
		}
		if err := m.Run(proc.NewRoundRobin(64), 100_000); err != nil {
			return err
		}
		if p.Err() != nil {
			return fmt.Errorf("%s: %w", method.Name(), p.Err())
		}
		fmt.Printf("%s — bus transactions of one DMA(src, dst, 64):\n", method.Name())
		out := rec.Render()
		if out == "" {
			out = "  (no bus traffic: the initiation ran inside the kernel/PAL call below)\n"
		}
		fmt.Print(out)
		fmt.Println()
	}
	return nil
}

func run(iters, procs int, sweep, contention, comparators, breakeven, ring, ringchurn, va, paging, steer bool, tlb int) error {
	infos, err := userdma.Overview()
	if err != nil {
		return err
	}
	ov := stats.NewTable("method", "engine mode", "user accesses", "instructions", "kernel mod?", "user poll?")
	for _, i := range infos {
		accesses := "-"
		if i.UserAccesses > 0 {
			accesses = fmt.Sprintf("%d", i.UserAccesses)
		}
		ov.AddRow(i.Name, i.EngineMode, accesses, i.Instructions, i.KernelMod, i.Polls)
	}
	fmt.Println("Initiation methods")
	fmt.Println(ov)

	if err := section("table1", iters, procs); err != nil {
		return err
	}

	if comparators {
		s, err := exp.Report("comparators", exp.Text,
			exp.Params{Iters: iters, Procs: procs, Methods: exp.ComparatorMethods()[:4]})
		if err != nil {
			return err
		}
		fmt.Print(s)
	}

	if sweep {
		if err := section("bussweep", iters, procs); err != nil {
			return err
		}
	}

	if breakeven {
		if err := section("breakeven", iters, procs); err != nil {
			return err
		}
	}

	if contention {
		if err := section("contention", iters, procs); err != nil {
			return err
		}
	}

	if ring {
		if err := section("ringdepth", iters, procs); err != nil {
			return err
		}
	}

	if ringchurn {
		if err := section("ringchurn", iters, procs); err != nil {
			return err
		}
	}

	if va {
		s, err := exp.Report("vasweep", exp.Text, exp.Params{Iters: iters, Procs: procs, TLB: tlb})
		if err != nil {
			return err
		}
		fmt.Print(s)
	}

	if paging {
		if err := section("paging", iters, procs); err != nil {
			return err
		}
	}

	if steer {
		s, err := exp.RunSteerSuite(exp.Params{Iters: iters, Procs: procs}, nil)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(exp.SteerSuiteText(s))
	}
	return nil
}
