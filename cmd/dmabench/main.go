// Command dmabench regenerates the paper's Table 1 — "Comparison of DMA
// initiation algorithms" — on the calibrated Alpha 3000/300 +
// TurboChannel machine model, and optionally the bus-frequency sweep
// (experiment X4) and the register-context contention study.
//
// Usage:
//
//	dmabench [-iters N] [-sweep] [-contention] [-comparators] [-procs W] [-json]
//
// The default -iters 1000 matches the paper's measurement loop.
// Independent measurement cells (one simulated machine each) run on
// -procs worker goroutines (default: GOMAXPROCS); results are
// byte-identical for any worker count. -json emits the raw numbers
// (simulated picoseconds) as one JSON document for snapshotting and
// regression comparison.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	userdma "uldma/internal/core"
	"uldma/internal/machine"
	"uldma/internal/par"
	"uldma/internal/proc"
	"uldma/internal/sim"
	"uldma/internal/stats"
	"uldma/internal/trace"
	"uldma/internal/vm"
)

func main() {
	iters := flag.Int("iters", 1000, "DMA initiations per method (paper: 1000)")
	sweep := flag.Bool("sweep", false, "also run the bus-frequency sweep (X4)")
	contention := flag.Bool("contention", false, "also run the register-context contention study")
	comparators := flag.Bool("comparators", false, "also measure the comparator methods (SHRIMP, FLASH, PAL)")
	breakeven := flag.Bool("breakeven", false, "also run the initiation-vs-transfer break-even sweep (X6)")
	traceFlag := flag.Bool("trace", false, "show the bus transactions of one initiation per method")
	trend := flag.Bool("trend", false, "also run the hardware-generation trend sweep (X7)")
	procs := flag.Int("procs", 0, "worker goroutines for independent measurement cells (0 = GOMAXPROCS)")
	jsonOut := flag.Bool("json", false, "emit results as one JSON document (raw simulated picoseconds)")
	flag.Parse()

	if *jsonOut {
		if err := runJSON(*iters, *procs, *sweep, *comparators, *breakeven, *trend, *contention); err != nil {
			fmt.Fprintln(os.Stderr, "dmabench:", err)
			os.Exit(1)
		}
		return
	}

	if *trend {
		if err := runTrend(*iters, *procs); err != nil {
			fmt.Fprintln(os.Stderr, "dmabench:", err)
			os.Exit(1)
		}
	}

	if *traceFlag {
		if err := runTrace(); err != nil {
			fmt.Fprintln(os.Stderr, "dmabench:", err)
			os.Exit(1)
		}
	}
	if err := run(*iters, *procs, *sweep, *contention, *comparators, *breakeven); err != nil {
		fmt.Fprintln(os.Stderr, "dmabench:", err)
		os.Exit(1)
	}
}

// JSON output types: times are raw sim.Time values (picoseconds of
// simulated time), exact integers suitable for byte-for-byte regression
// comparison across code changes.
type initiationJSON struct {
	Method      string
	Iterations  int
	MeanPs      int64
	MinPs       int64
	MaxPs       int64
	PaperMeanPs int64 `json:",omitempty"`
}

type breakEvenJSON struct {
	Size         uint64
	InitiationPs int64
	TransferPs   int64
	InitShare    float64
}

type trendJSON struct {
	Era             string
	KernelInitPs    int64
	UserInitPs      int64
	KernelCrossover uint64
}

type benchJSON struct {
	Machine     string
	Iters       int
	Table1      []initiationJSON
	Comparators []initiationJSON            `json:",omitempty"`
	BusSweep    map[string][]initiationJSON `json:",omitempty"`
	BreakEven   map[string][]breakEvenJSON  `json:",omitempty"`
	Trend       []trendJSON                 `json:",omitempty"`
	Contention  []initiationJSON            `json:",omitempty"`
}

func initJSON(r userdma.InitiationResult) initiationJSON {
	return initiationJSON{
		Method: r.Method, Iterations: r.Iterations,
		MeanPs: int64(r.Mean), MinPs: int64(r.Min), MaxPs: int64(r.Max),
		PaperMeanPs: int64(r.PaperMean),
	}
}

// runJSON gathers every requested section and emits one JSON document.
func runJSON(iters, procs int, sweep, comparators, breakeven, trend, contention bool) error {
	doc := benchJSON{Machine: machine.Alpha3000TC(0, 0).Name, Iters: iters}

	t1, err := userdma.Table1P(iters, procs)
	if err != nil {
		return err
	}
	for _, r := range t1 {
		doc.Table1 = append(doc.Table1, initJSON(r))
	}
	if comparators {
		rs, err := measureComparators(iters, procs)
		if err != nil {
			return err
		}
		for _, r := range rs {
			doc.Comparators = append(doc.Comparators, initJSON(r))
		}
	}
	if sweep {
		freqs := []sim.Hz{12_500_000, 33 * sim.MHz, 66 * sim.MHz}
		res, err := userdma.BusSweepP(iters, freqs, procs)
		if err != nil {
			return err
		}
		doc.BusSweep = make(map[string][]initiationJSON)
		for _, f := range freqs {
			var rows []initiationJSON
			for _, r := range res[f] {
				rows = append(rows, initJSON(r))
			}
			doc.BusSweep[f.String()] = rows
		}
	}
	if breakeven {
		doc.BreakEven = make(map[string][]breakEvenJSON)
		for _, m := range []userdma.Method{userdma.KernelLevel{}, userdma.ExtShadow{}} {
			pts, err := userdma.BreakEvenP(m, userdma.DefaultSizes, procs)
			if err != nil {
				return err
			}
			var rows []breakEvenJSON
			for _, pt := range pts {
				rows = append(rows, breakEvenJSON{
					Size: pt.Size, InitiationPs: int64(pt.Initiation),
					TransferPs: int64(pt.Transfer), InitShare: pt.InitShare,
				})
			}
			doc.BreakEven[m.Name()] = rows
		}
	}
	if trend {
		pts, err := userdma.TrendSweepP(iters, procs)
		if err != nil {
			return err
		}
		for _, pt := range pts {
			doc.Trend = append(doc.Trend, trendJSON{
				Era: pt.Era, KernelInitPs: int64(pt.KernelInit),
				UserInitPs: int64(pt.UserInit), KernelCrossover: pt.KernelCrossover,
			})
		}
	}
	if contention {
		res, err := userdma.ContextContention(userdma.ExtShadow{}, 6, iters/10+1)
		if err != nil {
			return err
		}
		for _, r := range res {
			doc.Contention = append(doc.Contention, initJSON(r))
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// measureComparators measures the non-Table-1 methods, one machine per
// cell, fanned out on the worker pool.
func measureComparators(iters, procs int) ([]userdma.InitiationResult, error) {
	methods := []userdma.Method{
		userdma.PALCode{}, userdma.SHRIMP1{},
		userdma.SHRIMP2{WithKernelMod: true}, userdma.FLASH{},
	}
	return par.Map(len(methods), procs, func(i int) (userdma.InitiationResult, error) {
		m := methods[i]
		cfg := machine.Alpha3000TC(m.EngineMode(), m.SeqLen())
		return userdma.MeasureMethod(m, cfg, iters)
	})
}

// runTrend prints experiment X7: the hardware-generation trend behind
// the paper's motivation.
func runTrend(iters, procs int) error {
	fmt.Println("Hardware-generation trend (X7) — the motivating §1/§2.2 argument")
	pts, err := userdma.TrendSweepP(iters, procs)
	if err != nil {
		return err
	}
	tb := stats.NewTable("era", "kernel init", "ext-shadow init", "ratio", "kernel break-even")
	for _, pt := range pts {
		tb.AddRow(pt.Era, pt.KernelInit, pt.UserInit,
			stats.Ratio(pt.KernelInit, pt.UserInit),
			fmt.Sprintf("%dB", pt.KernelCrossover))
	}
	fmt.Println(tb)
	fmt.Println("Processors and buses speed up; the trap's cycle count grows — so the")
	fmt.Println("kernel path's break-even keeps receding while user-level initiation")
	fmt.Println("rides the hardware. Exactly the trend the paper opens with.")
	fmt.Println()
	return nil
}

// runTrace records and prints the wire-level view of one initiation per
// Table 1 method: what the engine actually saw, in order, with window
// annotations.
func runTrace() error {
	for _, method := range userdma.AllMethods() {
		m := userdma.Machine(method)
		rec := trace.New(m.Clock, 64)
		rec.AnnotateEngine(m.Engine.Config())

		var h *userdma.Handle
		p := m.NewProcess("traced", func(c *proc.Context) error {
			rec.AttachBus(m.Bus)
			_, err := h.DMA(c, 0x10000, 0x20000, 64)
			rec.DetachBus(m.Bus)
			return err
		})
		var err error
		if h, err = method.Attach(m, p); err != nil {
			return err
		}
		if _, err := m.SetupPages(p, 0x10000, 1, vm.Read|vm.Write); err != nil {
			return err
		}
		dstFrames, err := m.SetupPages(p, 0x20000, 1, vm.Read|vm.Write)
		if err != nil {
			return err
		}
		if s1, ok := method.(userdma.SHRIMP1); ok {
			if err := s1.MapOutPage(m, p, 0x10000, dstFrames[0]); err != nil {
				return err
			}
		}
		if err := m.Run(proc.NewRoundRobin(64), 100_000); err != nil {
			return err
		}
		if p.Err() != nil {
			return fmt.Errorf("%s: %w", method.Name(), p.Err())
		}
		fmt.Printf("%s — bus transactions of one DMA(src, dst, 64):\n", method.Name())
		out := rec.Render()
		if out == "" {
			out = "  (no bus traffic: the initiation ran inside the kernel/PAL call below)\n"
		}
		fmt.Print(out)
		fmt.Println()
	}
	return nil
}

func run(iters, procs int, sweep, contention, comparators, breakeven bool) error {
	infos, err := userdma.Overview()
	if err != nil {
		return err
	}
	ov := stats.NewTable("method", "engine mode", "user accesses", "instructions", "kernel mod?", "user poll?")
	for _, i := range infos {
		accesses := "-"
		if i.UserAccesses > 0 {
			accesses = fmt.Sprintf("%d", i.UserAccesses)
		}
		ov.AddRow(i.Name, i.EngineMode, accesses, i.Instructions, i.KernelMod, i.Polls)
	}
	fmt.Println("Initiation methods")
	fmt.Println(ov)

	fmt.Printf("Table 1 — DMA initiation time (%d initiations/method)\n", iters)
	fmt.Printf("machine: %s\n\n", machine.Alpha3000TC(0, 0).Name)

	results, err := userdma.Table1P(iters, procs)
	if err != nil {
		return err
	}
	tb := stats.NewTable("DMA algorithm", "paper (µs)", "measured (µs)", "delta", "min", "max")
	for _, r := range results {
		tb.AddRow(r.Method,
			fmt.Sprintf("%.1f", r.PaperMean.Microseconds()),
			fmt.Sprintf("%.2f", r.Mean.Microseconds()),
			stats.DeltaPercent(r.Mean, r.PaperMean),
			r.Min, r.Max)
	}
	fmt.Println(tb)

	if comparators {
		fmt.Println("Comparators (not in Table 1; measured on the same model)")
		tb := stats.NewTable("method", "measured (µs)", "kernel mod?")
		rs, err := measureComparators(iters, procs)
		if err != nil {
			return err
		}
		for i, m := range []userdma.Method{
			userdma.PALCode{}, userdma.SHRIMP1{},
			userdma.SHRIMP2{WithKernelMod: true}, userdma.FLASH{},
		} {
			tb.AddRow(m.Name(), fmt.Sprintf("%.2f", rs[i].Mean.Microseconds()), m.RequiresKernelMod())
		}
		fmt.Println(tb)
	}

	if sweep {
		freqs := []sim.Hz{12_500_000, 33 * sim.MHz, 66 * sim.MHz}
		fmt.Println("Bus-frequency sweep (X4) — mean initiation (µs)")
		res, err := userdma.BusSweepP(iters, freqs, procs)
		if err != nil {
			return err
		}
		tb := stats.NewTable("DMA algorithm", "TC 12.5MHz", "PCI 33MHz", "PCI 66MHz")
		for i, r := range res[freqs[0]] {
			tb.AddRow(r.Method,
				fmt.Sprintf("%.2f", r.Mean.Microseconds()),
				fmt.Sprintf("%.2f", res[freqs[1]][i].Mean.Microseconds()),
				fmt.Sprintf("%.2f", res[freqs[2]][i].Mean.Microseconds()))
		}
		fmt.Println(tb)
	}

	if breakeven {
		fmt.Println("Break-even sweep (X6) — initiation share of total DMA cost")
		tb := stats.NewTable(append([]string{"DMA algorithm"}, sizesHeader()...)...)
		for _, m := range []userdma.Method{userdma.KernelLevel{}, userdma.ExtShadow{}} {
			pts, err := userdma.BreakEvenP(m, userdma.DefaultSizes, procs)
			if err != nil {
				return err
			}
			row := []any{m.Name()}
			for _, pt := range pts {
				row = append(row, fmt.Sprintf("%.0f%%", 100*pt.InitShare))
			}
			tb.AddRow(row...)
			if size, ok := userdma.Crossover(pts); ok {
				fmt.Printf("%-26s transfer outweighs initiation from %d bytes\n", m.Name()+":", size)
			}
		}
		fmt.Println()
		fmt.Println(tb)
	}

	if contention {
		fmt.Println("Register-context contention — 6 processes, 4 extended-shadow contexts")
		res, err := userdma.ContextContention(userdma.ExtShadow{}, 6, iters/10+1)
		if err != nil {
			return err
		}
		tb := stats.NewTable("process path", "mean (µs)")
		for _, r := range res {
			tb.AddRow(r.Method, fmt.Sprintf("%.2f", r.Mean.Microseconds()))
		}
		fmt.Println(tb)
	}
	return nil
}

// sizesHeader renders the break-even sweep's size columns.
func sizesHeader() []string {
	out := make([]string, 0, len(userdma.DefaultSizes))
	for _, s := range userdma.DefaultSizes {
		if s >= 1024 {
			out = append(out, fmt.Sprintf("%dKiB", s/1024))
		} else {
			out = append(out, fmt.Sprintf("%dB", s))
		}
	}
	return out
}
