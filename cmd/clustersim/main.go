// Command clustersim runs the paper's motivating workload — message
// passing on a Network of Workstations — end to end: node 0 sends
// messages into node 1's memory (payload by DMA, flag by remote write),
// node 1 polls and acknowledges. It reports per-message latency for
// each initiation method, showing where OS-initiated DMA stops making
// sense as links get faster (§1, §2.2).
//
// The measurement is the "clustersim" experiment in the internal/exp
// registry: one independent two-node cluster world per initiation
// method, fanned out on -procs worker goroutines with byte-identical
// output for any worker count. -json emits the table as raw simulated
// picoseconds.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"uldma/internal/exp"
)

func main() {
	msgs := flag.Int("msgs", 50, "messages per method")
	size := flag.Uint64("size", 256, "message payload bytes")
	gigabit := flag.Bool("gigabit", true, "use the Gigabit link preset (else ATM-155)")
	hist := flag.Bool("hist", false, "print per-method latency histograms")
	procs := flag.Int("procs", 0, "worker goroutines for independent cluster worlds (0 = GOMAXPROCS)")
	jsonOut := flag.Bool("json", false, "emit results as one JSON document (raw simulated picoseconds)")
	list := flag.Bool("list", false, "list the registered experiments and exit")
	flag.Parse()
	stop, err := exp.StartProfiles()
	if err != nil {
		fmt.Fprintln(os.Stderr, "clustersim:", err)
		os.Exit(2)
	}
	defer stop()
	if *list {
		fmt.Print(exp.List())
		return
	}
	if err := run(*msgs, *size, !*gigabit, *hist, *procs, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "clustersim:", err)
		exp.Exit(1)
	}
	if err := exp.FlushTrace(); err != nil {
		fmt.Fprintln(os.Stderr, "clustersim:", err)
		exp.Exit(1)
	}
}

// clusterJSON is the -json document.
type clusterJSON struct {
	Link    string
	Msgs    int
	MsgSize uint64
	Rows    []exp.ClusterRow
}

func run(msgs int, size uint64, atm, hist bool, procs int, jsonOut bool) error {
	p := exp.Params{Msgs: msgs, MsgSize: size, ATM: atm, Hist: hist, Procs: procs}
	r, err := exp.RunNamed("clustersim", p)
	if err != nil {
		return err
	}
	if jsonOut {
		link := "Gigabit"
		if atm {
			link = "ATM-155"
		}
		doc := clusterJSON{Link: link, Msgs: msgs, MsgSize: size, Rows: exp.ClusterRows(r)}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}
	s, err := exp.RenderNamed("clustersim", exp.Text, r, p)
	if err != nil {
		return err
	}
	fmt.Print(s)
	return nil
}
