// Command clustersim runs the paper's motivating workload — message
// passing on a Network of Workstations — end to end: node 0 sends
// messages into node 1's memory (payload by DMA, flag by remote write),
// node 1 polls and acknowledges. It reports per-message latency for
// each initiation method, showing where OS-initiated DMA stops making
// sense as links get faster (§1, §2.2).
package main

import (
	"flag"
	"fmt"
	"os"

	userdma "uldma/internal/core"
	"uldma/internal/dma"
	"uldma/internal/net"
	"uldma/internal/phys"
	"uldma/internal/proc"
	"uldma/internal/sim"
	"uldma/internal/stats"
	"uldma/internal/vm"
)

func main() {
	msgs := flag.Int("msgs", 50, "messages per method")
	size := flag.Uint64("size", 256, "message payload bytes")
	gigabit := flag.Bool("gigabit", true, "use the Gigabit link preset (else ATM-155)")
	hist := flag.Bool("hist", false, "print per-method latency histograms")
	flag.Parse()
	if err := run(*msgs, *size, *gigabit, *hist); err != nil {
		fmt.Fprintln(os.Stderr, "clustersim:", err)
		os.Exit(1)
	}
}

func run(msgs int, size uint64, gigabit, hist bool) error {
	link := net.ATM155()
	linkName := "ATM-155"
	if gigabit {
		link = net.Gigabit()
		linkName = "Gigabit"
	}
	fmt.Printf("NOW message passing — 2 workstations, %s link, %d×%dB messages\n\n",
		linkName, msgs, size)

	methods := []userdma.Method{
		userdma.KernelLevel{},
		userdma.ExtShadow{},
		userdma.KeyBased{},
		userdma.RepeatedPassing{Len: 5, Barriers: true},
	}
	tb := stats.NewTable("initiation method", "msg latency", "initiation", "init share")
	histograms := map[string]string{}
	for _, method := range methods {
		lat, initCost, sample, err := oneWayLatency(method, link, msgs, size)
		if err != nil {
			return fmt.Errorf("%s: %w", method.Name(), err)
		}
		tb.AddRow(method.Name(), lat, initCost,
			fmt.Sprintf("%.0f%%", 100*float64(initCost)/float64(lat)))
		if hist {
			histograms[method.Name()] = sample.Histogram(8)
		}
	}
	fmt.Println(tb)
	if hist {
		for _, method := range methods {
			fmt.Printf("latency distribution — %s:\n%s\n", method.Name(), histograms[method.Name()])
		}
	}
	fmt.Println("init share = fraction of one-way latency spent starting the DMA.")
	fmt.Println("The faster the link, the more the kernel trap dominates — the paper's thesis.")
	return nil
}

// oneWayLatency measures mean send-to-receive latency: sender DMAs the
// payload into the receiver's mailbox and remote-writes a sequence flag;
// the receiver polls the flag.
func oneWayLatency(method userdma.Method, link net.LinkConfig, msgs int, size uint64) (lat, initCost sim.Time, latencies *stats.Sample, err error) {
	cfg := userdma.ConfigFor(method)
	cluster, err := net.NewCluster(2, cfg, link)
	if err != nil {
		return 0, 0, nil, err
	}
	n0, n1 := cluster.Nodes[0], cluster.Nodes[1]

	const (
		srcVA    = vm.VAddr(0x10000) // sender payload page
		remVA    = vm.VAddr(0x20000) // sender's window into the receiver
		boxVA    = vm.VAddr(0x30000) // receiver's local mailbox
		mailbox  = phys.Addr(0x80000)
		flagSlot = 8160 // flag word near the end of the mailbox page
	)

	var sendTimes []sim.Time
	var initSample, latSample stats.Sample

	var h *userdma.Handle
	sender := n0.NewProcess("sender", func(c *proc.Context) error {
		for i := 0; i < msgs; i++ {
			start := n0.Clock.Now()
			st, err := h.DMA(c, srcVA, remVA, size)
			if err != nil {
				return err
			}
			if st == dma.StatusFailure {
				return fmt.Errorf("message %d refused", i)
			}
			initSample.Add(n0.Clock.Now() - start)
			sendTimes = append(sendTimes, start)
			// Doorbell: remote-write the sequence number after the data.
			if err := c.Store(remVA+flagSlot, phys.Size64, uint64(i+1)); err != nil {
				return err
			}
			if err := c.MB(); err != nil {
				return err
			}
			// Pace the sender so messages do not pile up in flight.
			for n0.Clock.Now() < start+200*sim.Microsecond {
				c.Spin(2000)
			}
		}
		return nil
	})

	receiver := n1.NewProcess("receiver", func(c *proc.Context) error {
		for i := 0; i < msgs; i++ {
			for {
				v, err := c.Load(boxVA+flagSlot, phys.Size64)
				if err != nil {
					return err
				}
				if v >= uint64(i+1) {
					break
				}
				c.Spin(500)
			}
			latSample.Add(n1.Clock.Now() - sendTimes[i])
		}
		return nil
	})

	// Sender setup. Attach first: context-carrying methods burn their
	// context id into the shadow mappings created below.
	h, err = method.Attach(n0, sender)
	if err != nil {
		return 0, 0, nil, err
	}
	frames, err := n0.SetupPages(sender, srcVA, 1, vm.Read|vm.Write)
	if err != nil {
		return 0, 0, nil, err
	}
	n0.Mem.Fill(frames[0], int(size), 0xab)
	if err := n0.Kernel.MapRemote(sender, remVA, 1, mailbox); err != nil {
		return 0, 0, nil, err
	}
	if err := n0.Kernel.MapShadow(sender, remVA); err != nil {
		return 0, 0, nil, err
	}
	if s1, ok := method.(userdma.SHRIMP1); ok {
		if err := s1.MapOutPage(n0, sender, srcVA, n0.Engine.Config().RemoteAddr(1, mailbox)); err != nil {
			return 0, 0, nil, err
		}
	}
	// Receiver setup: read-only view of its mailbox page.
	if err := n1.Kernel.MapFrame(receiver.AddressSpace(), boxVA, mailbox, vm.Read); err != nil {
		return 0, 0, nil, err
	}

	if err := cluster.RunRoundRobin(8, 1<<30); err != nil {
		return 0, 0, nil, err
	}
	if sender.Err() != nil {
		return 0, 0, nil, fmt.Errorf("sender: %w", sender.Err())
	}
	if receiver.Err() != nil {
		return 0, 0, nil, fmt.Errorf("receiver: %w", receiver.Err())
	}
	return latSample.Mean(), initSample.Mean(), &latSample, nil
}
