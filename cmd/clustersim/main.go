// Command clustersim runs the paper's motivating workload — message
// passing on a Network of Workstations — end to end: node 0 sends
// messages into node 1's memory (payload by DMA, flag by remote write),
// node 1 polls and acknowledges. It reports per-message latency for
// each initiation method, showing where OS-initiated DMA stops making
// sense as links get faster (§1, §2.2).
//
// The measurement is the "clustersim" experiment in the internal/exp
// registry: one independent two-node cluster world per initiation
// method, fanned out on -procs worker goroutines with byte-identical
// output for any worker count. -json emits the table as raw simulated
// picoseconds.
//
// -scale switches to the "scale" experiment instead: a 1000-node-class
// NOW on the sharded parallel engine (net.ShardedCluster), driven by an
// open-loop multi-tenant user-level DMA RPC generator. -nodes, -shards,
// -arrival, -tenants, -bytes and -ms size the world; -procs becomes the
// INTRA-world shard worker count (output is byte-identical for every
// value). -bench additionally times the same world at shards {1,4,8}
// on this host's wall clock and reports host events/sec — the one
// deliberately non-reproducible section (cmd/benchdiff treats those
// leaves as informational).
//
// -scale -protocol upgrades the abstract RPC model to the
// "scalemachine" experiment: every node becomes a FULL machine.Machine
// and each RPC runs the named initiation protocol's real sequence —
// kernel, extshadow, keybased, repeated, or "all" for the whole Table-1
// line-up (one world per protocol). With -bench, the host-timed shard
// ladder runs per protocol.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"uldma/internal/exp"
	"uldma/internal/sim"
)

func main() {
	msgs := flag.Int("msgs", 50, "messages per method")
	size := flag.Uint64("size", 256, "message payload bytes")
	gigabit := flag.Bool("gigabit", true, "use the Gigabit link preset (else ATM-155)")
	hist := flag.Bool("hist", false, "print per-method latency histograms")
	procs := flag.Int("procs", 0, "worker goroutines (cell fan-out; with -scale: intra-world shard workers; 0 = GOMAXPROCS)")
	jsonOut := flag.Bool("json", false, "emit results as one JSON document (raw simulated picoseconds)")
	list := flag.Bool("list", false, "list the registered experiments and exit")

	scale := flag.Bool("scale", false, "run the sharded NOW scale experiment instead of the two-node comparison")
	nodes := flag.Int("nodes", 32, "scale: cluster size (>= 2)")
	shards := flag.Int("shards", 4, "scale: shard count (1..nodes)")
	arrival := flag.Int("arrival", 20000, "scale: per-node RPC arrival rate, RPCs/s (> 0)")
	tenants := flag.Int("tenants", 2, "scale: arrival streams per node (> 0)")
	bytes := flag.Uint64("bytes", 64, "scale: request payload bytes")
	ms := flag.Int("ms", 2, "scale: arrival-window length, simulated milliseconds (> 0)")
	seed := flag.Uint64("seed", 1, "scale: world seed")
	bench := flag.Bool("bench", false, "scale: time the world at shards {1,4,8} and report host events/sec (JSON)")
	protocol := flag.String("protocol", "", "scale: run FULL machines with this initiation protocol (kernel, extshadow, keybased, repeated, all)")
	flag.Parse()
	stop, err := exp.StartProfiles()
	if err != nil {
		fmt.Fprintln(os.Stderr, "clustersim:", err)
		os.Exit(2)
	}
	defer stop()
	if *list {
		fmt.Print(exp.List())
		return
	}
	if *scale {
		p := exp.Params{
			Nodes: *nodes, Shards: *shards, Arrival: *arrival, Tenants: *tenants,
			ScaleBytes: *bytes, ScaleDur: sim.Time(*ms) * sim.Millisecond,
			ScaleSeed: *seed, Procs: *procs, Protocol: *protocol,
		}
		if err := validateScale(*nodes, *shards, *arrival, *tenants, *ms, *protocol, *bytes); err != nil {
			fmt.Fprintln(os.Stderr, "clustersim:", err)
			exp.Exit(2)
		}
		if err := runScale(p, *jsonOut, *bench); err != nil {
			fmt.Fprintln(os.Stderr, "clustersim:", err)
			exp.Exit(1)
		}
	} else if *protocol != "" {
		fmt.Fprintln(os.Stderr, "clustersim: -protocol selects the machine-world scale experiment and needs -scale")
		exp.Exit(2)
	} else if err := run(*msgs, *size, !*gigabit, *hist, *procs, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "clustersim:", err)
		exp.Exit(1)
	}
	if err := exp.FlushTrace(); err != nil {
		fmt.Fprintln(os.Stderr, "clustersim:", err)
		exp.Exit(1)
	}
}

// validateScale rejects nonsense scale configurations up front with
// flag-level messages (the experiment validates again underneath).
func validateScale(nodes, shards, arrival, tenants, ms int, protocol string, bytes uint64) error {
	if err := exp.ValidProtocol(protocol); err != nil {
		return fmt.Errorf("-protocol %q: %w", protocol, err)
	}
	if protocol != "" {
		if err := exp.ValidScaleMachineWorld(nodes, bytes); err != nil {
			return fmt.Errorf("-protocol %s: %w", protocol, err)
		}
	}
	switch {
	case nodes < 2:
		return fmt.Errorf("-nodes %d: the scale workload needs at least 2 nodes", nodes)
	case shards < 1:
		return fmt.Errorf("-shards %d: need at least 1 shard", shards)
	case shards > nodes:
		return fmt.Errorf("-shards %d exceeds -nodes %d: a shard must own at least one node", shards, nodes)
	case arrival <= 0:
		return fmt.Errorf("-arrival %d: the RPC arrival rate must be positive", arrival)
	case tenants < 1:
		return fmt.Errorf("-tenants %d: need at least 1 tenant stream per node", tenants)
	case ms <= 0:
		return fmt.Errorf("-ms %d: the arrival window must be positive", ms)
	}
	return nil
}

// clusterJSON is the -json document.
type clusterJSON struct {
	Link    string
	Msgs    int
	MsgSize uint64
	Rows    []exp.ClusterRow
}

// scaleJSON is the -scale -json document. Scale holds the configured
// run; Bench (with -bench) holds the host-timed shard ladder. With
// -protocol the machine-world sections are populated instead — a
// separate pair of keys so the flat scale wire format never shifts.
type scaleJSON struct {
	Scale        []exp.ScaleRow        `json:",omitempty"`
	Bench        []exp.ScaleRow        `json:",omitempty"`
	ScaleMachine []exp.ScaleMachineRow `json:",omitempty"`
	BenchMachine []exp.ScaleMachineRow `json:",omitempty"`
}

func run(msgs int, size uint64, atm, hist bool, procs int, jsonOut bool) error {
	p := exp.Params{Msgs: msgs, MsgSize: size, ATM: atm, Hist: hist, Procs: procs}
	r, err := exp.RunNamed("clustersim", p)
	if err != nil {
		return err
	}
	if jsonOut {
		link := "Gigabit"
		if atm {
			link = "ATM-155"
		}
		doc := clusterJSON{Link: link, Msgs: msgs, MsgSize: size, Rows: exp.ClusterRows(r)}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}
	s, err := exp.RenderNamed("clustersim", exp.Text, r, p)
	if err != nil {
		return err
	}
	fmt.Print(s)
	return nil
}

func runScale(p exp.Params, jsonOut, bench bool) error {
	name := "scale"
	if p.Protocol != "" {
		name = "scalemachine"
	}
	r, err := exp.RunNamed(name, p)
	if err != nil {
		return err
	}
	if !jsonOut && !bench {
		s, err := exp.RenderNamed(name, exp.Text, r, p)
		if err != nil {
			return err
		}
		fmt.Print(s)
		return nil
	}
	var doc scaleJSON
	if p.Protocol != "" {
		doc.ScaleMachine = exp.ScaleMachineRows(r)
		if bench {
			rows, err := benchScaleMachine(p)
			if err != nil {
				return err
			}
			doc.BenchMachine = rows
		}
	} else {
		doc.Scale = exp.ScaleRows(r)
		if bench {
			rows, err := benchScale(p)
			if err != nil {
				return err
			}
			doc.Bench = rows
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// benchScale times the SAME world at shards {1,4,8} (skipping counts
// above -nodes) with workers = shard count, and stamps each row with
// this host's wall time and events/sec. The simulated results are
// byte-identical across the ladder — only the Host* fields vary, and
// they vary with the machine: events/sec scales with shard count only
// up to the host's core count (HostCPUs records it).
func benchScale(p exp.Params) ([]exp.ScaleRow, error) {
	var rows []exp.ScaleRow
	for _, shards := range []int{1, 4, 8} {
		if shards > p.Nodes {
			continue
		}
		bp := p
		bp.Shards = shards
		start := time.Now()
		pt, err := exp.RunScale(bp, shards)
		if err != nil {
			return nil, err
		}
		wall := time.Since(start)
		row := exp.ScaleRowOf(pt)
		row.HostNs = wall.Nanoseconds()
		if wall > 0 {
			row.HostEventsPerSec = float64(pt.Events) / wall.Seconds()
		}
		row.HostCPUs = runtime.NumCPU()
		rows = append(rows, row)
	}
	return rows, nil
}

// benchScaleMachine is benchScale for the hosted-machine worlds: the
// same shard ladder, one pass per selected protocol. The simulated
// columns are byte-identical down each protocol's ladder; only the
// Host* stamps vary with the machine.
func benchScaleMachine(p exp.Params) ([]exp.ScaleMachineRow, error) {
	names, err := exp.ScaleProtocolNames(p.Protocol)
	if err != nil {
		return nil, err
	}
	var rows []exp.ScaleMachineRow
	for _, name := range names {
		for _, shards := range []int{1, 4, 8} {
			if shards > p.Nodes {
				continue
			}
			bp := p
			bp.Shards = shards
			start := time.Now()
			pt, err := exp.RunScaleMachineNamed(name, bp, shards)
			if err != nil {
				return nil, err
			}
			wall := time.Since(start)
			row := exp.ScaleMachineRowOf(pt)
			row.HostNs = wall.Nanoseconds()
			if wall > 0 {
				row.HostEventsPerSec = float64(pt.Events) / wall.Seconds()
			}
			row.HostCPUs = runtime.NumCPU()
			rows = append(rows, row)
		}
	}
	return rows, nil
}
