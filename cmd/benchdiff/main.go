// Command benchdiff compares two performance-trajectory snapshots (the
// JSON documents cmd/dmabench and cmd/report emit with -json, raw
// simulated picoseconds) and reports every numeric leaf that changed.
//
//	benchdiff [-tol 0.5] [-fatal] [-fatal-threshold PCT] baseline.json current.json
//	benchdiff [-iters N] [-procs W] [-fatal]   # regenerate vs BENCH_baseline.json
//
// With one or zero file arguments the current document is regenerated
// in-process with the same sections `make baseline` snapshots (Table 1,
// comparators, bus sweep, break-even, trend). The diff is structural:
// arrays of measurement rows are keyed by their Method/Size fields when
// present, so a changed row reads as "Table1[Key-based DMA].MeanPs"
// rather than an index.
//
// Because every value is exact simulated time, ANY delta means the
// model's behaviour changed — there is no host noise to tolerate. The
// default exit status is 0 regardless (make ci runs benchdiff as a
// non-fatal report; an intentional model change is committed via `make
// baseline`); -fatal makes deltas beyond -tol percent fail the run
// (exit 2), and -fatal-threshold PCT gives CI an opt-in regression
// gate: exit 1 when any MODEL leaf moves by at least PCT percent,
// independent of what -tol prints.
// Leaves present on only one side — a new experiment in the current
// document, or a section retired from it — are listed as added/removed
// and are never fatal: growing or pruning the benchmark surface is a
// deliberate act, not a regression. Leaves whose final key starts with
// "Host" (HostNs, HostEventsPerSec, HostCPUs — the wall-clock shard
// ladder from `clustersim -scale -bench`) are informational: printed
// when they move, never flagged, never fatal.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"uldma/internal/exp"
	"uldma/internal/obs"
)

// errRegression marks a -fatal-threshold failure: the diff itself ran
// fine, but model leaves moved beyond the configured ceiling. main
// maps it to exit status 1 (a CI-regression verdict) rather than the
// exit-2 usage/IO failures.
var errRegression = errors.New("regression threshold exceeded")

func main() {
	iters := flag.Int("iters", 1000, "initiations per measurement when regenerating")
	procs := flag.Int("procs", 0, "worker goroutines when regenerating (0 = GOMAXPROCS)")
	tol := flag.Float64("tol", 0, "percent delta beyond which a leaf is flagged")
	fatal := flag.Bool("fatal", false, "exit 1 when any leaf is flagged")
	fatalThreshold := flag.Float64("fatal-threshold", -1,
		"exit 1 when any model leaf moves by at least this percent (Host* leaves stay exempt; negative = off)")
	flag.Parse()

	if err := run(flag.Args(), *iters, *procs, *tol, *fatal, *fatalThreshold); err != nil {
		if errors.Is(err, errRegression) {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if err := exp.FlushTrace(); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
}

func run(args []string, iters, procs int, tol float64, fatal bool, fatalThreshold float64) error {
	basePath := "BENCH_baseline.json"
	var base, cur map[string]any
	switch len(args) {
	case 2:
		basePath = args[0]
		if err := load(args[0], &base); err != nil {
			return err
		}
		if err := load(args[1], &cur); err != nil {
			return err
		}
	case 1, 0:
		if len(args) == 1 {
			basePath = args[0]
		}
		if err := load(basePath, &base); err != nil {
			return err
		}
		var err error
		if cur, err = regenerate(iters, procs); err != nil {
			return err
		}
	default:
		return fmt.Errorf("want at most two file arguments, got %d", len(args))
	}

	bleaves, cleaves := map[string]float64{}, map[string]float64{}
	flatten("", base, bleaves)
	flatten("", cur, cleaves)

	paths := map[string]bool{}
	for p := range bleaves {
		paths[p] = true
	}
	for p := range cleaves {
		paths[p] = true
	}
	ordered := make([]string, 0, len(paths))
	for p := range paths {
		ordered = append(ordered, p)
	}
	sort.Strings(ordered)

	flagged, same, added, removed, host, regressed := 0, 0, 0, 0, 0, 0
	for _, p := range ordered {
		b, inB := bleaves[p]
		c, inC := cleaves[p]
		switch {
		case hostLeaf(p):
			// Host-clock leaves (HostNs, HostEventsPerSec, HostCPUs from
			// `clustersim -scale -bench`) measure THIS machine, not the
			// model: they move with load, governor state and core count.
			// Reported for the record, never flagged, never fatal.
			switch {
			case inB && inC && b != c:
				fmt.Printf("i %-60s %15.0f -> %15.0f  (host clock, informational)\n", p, b, c)
			case inB != inC:
				fmt.Printf("i %-60s %15.0f (host clock, one side only)\n", p, c+b)
			}
			host++
		case !inB:
			// A leaf only the current document has: a new experiment or
			// column, not a regression. Reported, never fatal.
			fmt.Printf("+ %-60s %15.0f (added)\n", p, c)
			added++
		case !inC:
			// A leaf only the baseline has: a retired section. Reported,
			// never fatal — retiring data is a deliberate act.
			fmt.Printf("- %-60s %15.0f (removed)\n", p, b)
			removed++
		case b != c:
			pct := math.Inf(1)
			if b != 0 {
				pct = (c - b) / b * 100
			}
			if math.Abs(pct) >= tol {
				fmt.Printf("~ %-60s %15.0f -> %15.0f  (%+.2f%%)\n", p, b, c, pct)
				flagged++
			} else {
				same++
			}
			// The CI regression gate is independent of -tol's print
			// filter: a leaf can regress past the ceiling even when
			// -tol keeps it out of the listing.
			if fatalThreshold >= 0 && math.Abs(pct) >= fatalThreshold {
				regressed++
			}
		default:
			same++
		}
	}
	fmt.Printf("benchdiff vs %s: %d leaves compared, %d flagged, %d unchanged, %d added, %d removed, %d host-clock\n",
		basePath, len(ordered), flagged, same, added, removed, host)
	if flagged > 0 && fatal {
		return fmt.Errorf("%d leaves differ", flagged)
	}
	if regressed > 0 {
		return fmt.Errorf("%w: %d model leaves moved by >= %.2f%%", errRegression, regressed, fatalThreshold)
	}
	return nil
}

// hostLeaf reports whether a dotted path names a host-wall-clock leaf:
// its final key segment starts with "Host". Those come from the -bench
// shard ladder and are the one deliberately machine-dependent section
// of any snapshot.
func hostLeaf(path string) bool {
	last := path
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '.' || path[i] == ']' {
			last = path[i+1:]
			break
		}
	}
	return len(last) >= 4 && last[:4] == "Host"
}

func load(path string, into *map[string]any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, into)
}

// regenerate rebuilds the `make baseline` document in-process and
// round-trips it through JSON so both sides flatten identically.
func regenerate(iters, procs int) (map[string]any, error) {
	doc := struct {
		Machine     string
		Iters       int
		Table1      []exp.InitiationRow
		Comparators []exp.InitiationRow
		BusSweep    map[string][]exp.InitiationRow
		BreakEven   map[string][]exp.BreakEvenRow
		Trend       []exp.TrendRow
		Metrics     map[string][]obs.MetricValue
	}{Machine: exp.MachineName(), Iters: iters}

	t1, err := exp.Table1(iters, procs)
	if err != nil {
		return nil, err
	}
	doc.Table1 = exp.InitRows(t1)
	cs, err := exp.Comparators(iters, procs, exp.ComparatorMethods()[:4])
	if err != nil {
		return nil, err
	}
	doc.Comparators = exp.InitRows(cs)
	sweep, err := exp.BusSweep(iters, procs)
	if err != nil {
		return nil, err
	}
	doc.BusSweep = exp.BusSweepJSON(sweep)
	be, err := exp.BreakEven(procs)
	if err != nil {
		return nil, err
	}
	doc.BreakEven = exp.BreakEvenJSON(be)
	pts, err := exp.TrendSweep(iters, procs)
	if err != nil {
		return nil, err
	}
	doc.Trend = exp.TrendRows(pts)
	if doc.Metrics, err = exp.MetricsSnapshot(iters); err != nil {
		return nil, err
	}

	raw, err := json.Marshal(doc)
	if err != nil {
		return nil, err
	}
	var out map[string]any
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// flatten walks a decoded JSON document and records every numeric leaf
// under a dotted path. Array elements that carry an identifying field
// (Method, Label, Size, Gen, Name — the last keys the observability
// registry's metric rows) are keyed by its value instead of their
// index, so reordering or insertion reads as what it is.
func flatten(prefix string, v any, out map[string]float64) {
	switch t := v.(type) {
	case map[string]any:
		for k, child := range t {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			flatten(p, child, out)
		}
	case []any:
		for i, child := range t {
			key := fmt.Sprintf("[%d]", i)
			if m, ok := child.(map[string]any); ok {
				for _, id := range []string{"Method", "Label", "Size", "Gen", "Name"} {
					switch idv := m[id].(type) {
					case string:
						key = "[" + idv + "]"
					case float64:
						key = fmt.Sprintf("[%s=%.0f]", id, idv)
					default:
						continue
					}
					break
				}
			}
			flatten(prefix+key, child, out)
		}
	case float64:
		out[prefix] = t
	}
}
