// Command oslat is an lmbench-style microbenchmark of the simulated
// operating system: null-syscall latency, context-switch cost, and the
// kernel DMA path broken into its Figure 1 components. It validates the
// §2.2 premise ("the overhead of an empty system call ... ranges
// between 1,000 and 5,000 processor cycles") on the model.
//
// The measurement is the "oslat" experiment in the internal/exp
// registry: three independent simulated worlds that fan out on -procs
// worker goroutines with byte-identical output for any worker count.
// -json emits the table as raw simulated picoseconds.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"uldma/internal/exp"
)

func main() {
	iters := flag.Int("iters", 10_000, "iterations per microbenchmark")
	steer := flag.Bool("steer", false, "converge the iteration count on a steered ladder instead of paying -iters up front")
	procs := flag.Int("procs", 0, "worker goroutines for independent benchmark worlds (0 = GOMAXPROCS)")
	jsonOut := flag.Bool("json", false, "emit results as one JSON document (raw simulated picoseconds)")
	list := flag.Bool("list", false, "list the registered experiments and exit")
	flag.Parse()
	stop, err := exp.StartProfiles()
	if err != nil {
		fmt.Fprintln(os.Stderr, "oslat:", err)
		os.Exit(2)
	}
	defer stop()
	if *list {
		fmt.Print(exp.List())
		return
	}
	if *steer {
		if err := runSteered(*procs); err != nil {
			fmt.Fprintln(os.Stderr, "oslat:", err)
			exp.Exit(1)
		}
	} else if err := run(*iters, *procs, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "oslat:", err)
		exp.Exit(1)
	}
	if err := exp.FlushTrace(); err != nil {
		fmt.Fprintln(os.Stderr, "oslat:", err)
		exp.Exit(1)
	}
}

// oslatJSON is the -json document.
type oslatJSON struct {
	Machine string
	Iters   int
	Rows    []exp.OSLatRow
}

// runSteered climbs the convergence ladder instead of running the full
// microbenchmark grid: rungs of increasing iteration counts, stopped
// at the first whose null-syscall mean is stable, then the standard
// table at the converged count. The decision trace shows the climb.
func runSteered(procs int) error {
	res, pol, err := exp.SteeredOSLat(exp.Params{Procs: procs}, nil)
	if err != nil {
		return err
	}
	iters, _ := pol.Converged()
	fmt.Printf("Steered oslat — converged at %d iterations (probed %d of %d rungs):\n",
		iters, res.Probed(), res.GridCells)
	fmt.Print(res.Log.Render())
	fmt.Println()
	return run(iters, procs, false)
}

func run(iters, procs int, jsonOut bool) error {
	p := exp.Params{Iters: iters, Procs: procs}
	r, err := exp.RunNamed("oslat", p)
	if err != nil {
		return err
	}
	if jsonOut {
		doc := oslatJSON{Machine: exp.MachineName(), Iters: iters, Rows: exp.OSLatRows(r)}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}
	s, err := exp.RenderNamed("oslat", exp.Text, r, p)
	if err != nil {
		return err
	}
	fmt.Print(s)
	if !exp.OSLatInBand(r) {
		return fmt.Errorf("null syscall out of the lmbench band")
	}
	return nil
}
