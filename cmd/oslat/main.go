// Command oslat is an lmbench-style microbenchmark of the simulated
// operating system: null-syscall latency, context-switch cost, and the
// kernel DMA path broken into its Figure 1 components. It validates the
// §2.2 premise ("the overhead of an empty system call ... ranges
// between 1,000 and 5,000 processor cycles") on the model.
package main

import (
	"flag"
	"fmt"
	"os"

	"uldma/internal/dma"
	"uldma/internal/kernel"
	"uldma/internal/machine"
	"uldma/internal/phys"
	"uldma/internal/proc"
	"uldma/internal/sim"
	"uldma/internal/stats"
	"uldma/internal/vm"
)

func main() {
	iters := flag.Int("iters", 10_000, "iterations per microbenchmark")
	flag.Parse()
	if err := run(*iters); err != nil {
		fmt.Fprintln(os.Stderr, "oslat:", err)
		os.Exit(1)
	}
}

func run(iters int) error {
	cfg := machine.Alpha3000TC(dma.ModePaired, 0)
	fmt.Printf("OS latency microbenchmarks — %s (%d iterations)\n\n", cfg.Name, iters)

	m, err := machine.New(cfg)
	if err != nil {
		return err
	}
	var nullSample, dmaSample stats.Sample
	p := m.NewProcess("lmbench", func(c *proc.Context) error {
		for i := 0; i < iters; i++ {
			start := m.Clock.Now()
			if _, err := c.Syscall(kernel.SysNull); err != nil {
				return err
			}
			nullSample.Add(m.Clock.Now() - start)
		}
		for i := 0; i < iters; i++ {
			start := m.Clock.Now()
			if _, err := c.Syscall(kernel.SysDMA, 0x10000, 0x20000, 64); err != nil {
				return err
			}
			dmaSample.Add(m.Clock.Now() - start)
		}
		return nil
	})
	m.Kernel.AllocPage(p.AddressSpace(), 0x10000, vm.Read|vm.Write)
	m.Kernel.AllocPage(p.AddressSpace(), 0x20000, vm.Read|vm.Write)
	if err := m.Run(proc.NewRoundRobin(1<<20), 1<<30); err != nil {
		return err
	}
	if p.Err() != nil {
		return p.Err()
	}

	// Context switch cost: two ping-ponging processes under quantum 1.
	m2 := machine.MustNew(cfg)
	for i := 0; i < 2; i++ {
		m2.NewProcess("switcher", func(c *proc.Context) error {
			for k := 0; k < iters/10; k++ {
				c.Spin(1)
			}
			return nil
		})
	}
	if err := m2.Run(proc.NewRoundRobin(1), 1<<30); err != nil {
		return err
	}
	switchMean := sim.Time(0)
	if s := m2.Runner.Stats(); s.Switches > 0 {
		switchMean = s.SwitchTime / sim.Time(s.Switches)
	}

	// PAL dispatch, uncached access, and TLB-miss microbenchmarks on a
	// third machine.
	m3 := machine.MustNew(cfg)
	m3.Kernel.InstallPALDMA()
	var palSample, uncachedSample, tlbMissPenalty stats.Sample
	p3 := m3.NewProcess("micro", func(c *proc.Context) error {
		// PAL call (includes its two uncached accesses).
		for i := 0; i < iters/10; i++ {
			start := m3.Clock.Now()
			if _, err := c.PALCall(kernel.PALUserDMA, 0x10000, 0x20000, 0); err != nil {
				return err
			}
			palSample.Add(m3.Clock.Now() - start)
		}
		// Single uncached load (engine control-status via shadow poll is
		// method-specific; use a shadow status read path: a store+load
		// pair minus the posted store is just the load).
		for i := 0; i < iters/10; i++ {
			start := m3.Clock.Now()
			if _, err := c.Load(kernel.ShadowVA(0x10000), phys.Size64); err != nil {
				return err
			}
			uncachedSample.Add(m3.Clock.Now() - start)
		}
		// TLB miss penalty: first touch of a fresh page vs a warm one.
		for i := 0; i < 16; i++ {
			va := vm.VAddr(0x40000 + uint64(i)*m3.Cfg.PageSize)
			start := m3.Clock.Now()
			if _, err := c.Load(va, phys.Size64); err != nil {
				return err
			}
			cold := m3.Clock.Now() - start
			start = m3.Clock.Now()
			if _, err := c.Load(va, phys.Size64); err != nil {
				return err
			}
			warm := m3.Clock.Now() - start
			tlbMissPenalty.Add(cold - warm)
		}
		return nil
	})
	m3.Kernel.AllocPage(p3.AddressSpace(), 0x10000, vm.Read|vm.Write)
	m3.Kernel.AllocPage(p3.AddressSpace(), 0x20000, vm.Read|vm.Write)
	m3.Kernel.MapShadow(p3, 0x10000)
	m3.Kernel.MapShadow(p3, 0x20000)
	for i := 0; i < 16; i++ {
		m3.Kernel.AllocPage(p3.AddressSpace(), vm.VAddr(0x40000+uint64(i)*m3.Cfg.PageSize), vm.Read)
	}
	if err := m3.Run(proc.NewRoundRobin(1<<20), 1<<62); err != nil {
		return err
	}
	if p3.Err() != nil {
		return p3.Err()
	}

	cpuFreq := cfg.CPU.Freq
	tb := stats.NewTable("microbenchmark", "mean", "CPU cycles")
	tb.AddRow("null syscall", nullSample.Mean(), cpuFreq.CyclesIn(nullSample.Mean()))
	tb.AddRow("DMA syscall (Figure 1)", dmaSample.Mean(), cpuFreq.CyclesIn(dmaSample.Mean()))
	tb.AddRow("context switch", switchMean, cpuFreq.CyclesIn(switchMean))
	tb.AddRow("PAL user_level_dma call", palSample.Mean(), cpuFreq.CyclesIn(palSample.Mean()))
	tb.AddRow("uncached device load", uncachedSample.Mean(), cpuFreq.CyclesIn(uncachedSample.Mean()))
	tb.AddRow("TLB miss penalty", tlbMissPenalty.Mean(), cpuFreq.CyclesIn(tlbMissPenalty.Mean()))
	fmt.Println(tb)

	cycles := cpuFreq.CyclesIn(nullSample.Mean())
	fmt.Printf("paper §2.2: empty syscall should cost 1,000-5,000 cycles — measured %d: ", cycles)
	if cycles >= 1000 && cycles <= 5000 {
		fmt.Println("WITHIN BAND")
	} else {
		fmt.Println("OUT OF BAND")
		return fmt.Errorf("null syscall out of the lmbench band")
	}
	fmt.Printf("kernel DMA = null syscall + %v of translation, checks and device programming\n",
		dmaSample.Mean()-nullSample.Mean())
	return nil
}
