// Command attacksim replays the paper's adversarial interleavings:
//
//	attacksim -figure 5    Figure 5: hijack of the 3-access variant
//	attacksim -figure 6    Figure 6: deception of the 4-access variant
//	attacksim -figure 8    Figure 8: the safe 5-access sequence under
//	                       the same attack, plus an exhaustive
//	                       interleaving search and a seeded random
//	                       adversarial campaign
//	attacksim              all of the above
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	userdma "uldma/internal/core"
	"uldma/internal/exp"
	"uldma/internal/isa"
)

func main() {
	figure := flag.Int("figure", 0, "which figure to replay (5, 6 or 8; 0 = all)")
	attackerSlots := flag.Int("slots", 4, "attacker slots for the exhaustive search")
	seeds := flag.Int("seeds", 25, "random adversarial campaigns for figure 8")
	procs := flag.Int("procs", 0, "worker goroutines for the figure-8 searches (0 = GOMAXPROCS)")
	victimSrc := flag.String("victim", "", "custom victim sequence (assembler syntax; symbols A B C FOO)")
	attackerSrc := flag.String("attacker", "", "custom attacker sequence")
	schedule := flag.String("schedule", "", "custom slot schedule, e.g. VAAAVVAV")
	seqLen := flag.Int("seqlen", 5, "engine sequence length for -victim mode (3, 4 or 5)")
	shareA := flag.Bool("share-a", false, "give the attacker read access to page A")
	list := flag.Bool("list", false, "list the registered experiments and exit")
	flag.Parse()
	stop, err := exp.StartProfiles()
	if err != nil {
		fmt.Fprintln(os.Stderr, "attacksim:", err)
		os.Exit(2)
	}
	defer stop()

	if *list {
		fmt.Print(exp.List())
		return
	}

	if *victimSrc != "" {
		if err := custom(*seqLen, *shareA, *victimSrc, *attackerSrc, *schedule); err != nil {
			fmt.Fprintln(os.Stderr, "attacksim:", err)
			exp.Exit(1)
		}
		return
	}

	run := func(f int) error {
		switch f {
		case 5:
			return figure5()
		case 6:
			return figure6()
		case 8:
			return figure8(*attackerSlots, *seeds, *procs)
		default:
			return fmt.Errorf("unknown figure %d", f)
		}
	}
	figures := []int{5, 6, 8}
	if *figure != 0 {
		figures = []int{*figure}
	}
	for _, f := range figures {
		if err := run(f); err != nil {
			fmt.Fprintln(os.Stderr, "attacksim:", err)
			exp.Exit(1)
		}
		fmt.Println()
	}
	if err := exp.FlushTrace(); err != nil {
		fmt.Fprintln(os.Stderr, "attacksim:", err)
		exp.Exit(1)
	}
}

// custom runs researcher-scripted sequences in the standard scenario.
// Example — rediscover Figure 6 by hand:
//
//	attacksim -seqlen 4 -share-a \
//	  -victim   'store B 64; mb; load A; store B 64; mb; load A' \
//	  -attacker 'load A' \
//	  -schedule VVVVVAV
func custom(seqLen int, shareA bool, victimSrc, attackerSrc, schedule string) error {
	banner("Custom duel")
	symbols := userdma.ScenarioSymbols()
	victim, err := isa.Assemble(victimSrc, symbols)
	if err != nil {
		return fmt.Errorf("victim: %w", err)
	}
	var attacker isa.Program
	if attackerSrc != "" {
		if attacker, err = isa.Assemble(attackerSrc, symbols); err != nil {
			return fmt.Errorf("attacker: %w", err)
		}
	}
	fmt.Printf("engine: repeated-passing, %d-access FSM; attacker reads A: %v\n\n", seqLen, shareA)
	fmt.Println("victim sequence:")
	fmt.Print(victim.Disassemble())
	if len(attacker) > 0 {
		fmt.Println("attacker sequence:")
		fmt.Print(attacker.Disassemble())
	}
	o, err := userdma.CustomDuel(seqLen, shareA, victim, attacker, schedule)
	if err != nil {
		return err
	}
	fmt.Printf("\nschedule: %s\noutcome:  %v\n", schedule, o)
	return nil
}

func banner(s string) {
	fmt.Println(s)
	fmt.Println(strings.Repeat("=", len([]rune(s))))
}

func figure5() error {
	banner("Figure 5 — 3-access repeated passing: hijack")
	fmt.Println(`victim wants DMA A->B; attacker touches only its own pages FOO and C`)
	o, err := userdma.Figure5()
	if err != nil {
		return err
	}
	fmt.Printf("transfers started:       %v\n", o.Transfers)
	fmt.Printf("victim believes success: %v (status %#x)\n", o.VictimBelievesSuccess, o.VictimStatus)
	fmt.Printf("HIJACKED:                %v  (attacker data written into victim page B)\n", o.Hijacked)
	if !o.Hijacked {
		return fmt.Errorf("expected the figure 5 hijack to reproduce")
	}
	return nil
}

func figure6() error {
	banner("Figure 6 — 4-access repeated passing: deception")
	fmt.Println(`victim wants DMA A->B; attacker has read access to public page A`)
	o, err := userdma.Figure6()
	if err != nil {
		return err
	}
	fmt.Printf("transfers started:       %v\n", o.Transfers)
	fmt.Printf("attacker's load status:  %#x (the DMA started for the ATTACKER)\n", o.AttackerStatus)
	fmt.Printf("victim told:             FAILURE=%v\n", !o.VictimBelievesSuccess)
	fmt.Printf("MISINFORMED:             %v\n", o.Misinformed)
	if !o.Misinformed || o.Hijacked {
		return fmt.Errorf("expected the figure 6 deception (and no hijack) to reproduce")
	}
	return nil
}

func figure8(attackerSlots, seeds, procs int) error {
	banner("Figure 8 — 5-access repeated passing under attack")
	o, err := userdma.Figure8Replay()
	if err != nil {
		return err
	}
	fmt.Printf("figure-5-style schedule:  %v\n", o)
	if o.Hijacked {
		return fmt.Errorf("the 5-access sequence was hijacked")
	}

	tried, hijack, err := exp.ExhaustiveInterleavings(attackerSlots, procs)
	if err != nil {
		return err
	}
	fmt.Printf("exhaustive search:        %d interleavings (victim x %d attacker slots), hijacks: ",
		tried, attackerSlots)
	if hijack != nil {
		fmt.Println("FOUND —", *hijack)
		return fmt.Errorf("safety violated")
	}
	fmt.Println("none")

	outcomes, err := exp.Campaign(seeds, false, false, procs)
	if err != nil {
		return err
	}
	hijacked, misinformed := 0, 0
	for _, o := range outcomes {
		if o.Hijacked {
			hijacked++
		}
		if o.Misinformed {
			misinformed++
		}
	}
	fmt.Printf("random campaigns:         %d runs, %d hijacks, %d status deceptions\n",
		seeds, hijacked, misinformed)
	fmt.Println("  (memory safety holds in every run — the paper's §3.3.1 claim;")
	fmt.Println("   the in-band status word can still lie under sustained interference,")
	fmt.Println("   a residual the paper's proof does not cover. See EXPERIMENTS.md.)")
	if hijacked > 0 {
		return fmt.Errorf("safety violated in random campaign")
	}
	return nil
}
