// Command faultsim runs the fault-injection studies: the reliable
// user-level channel (internal/msg) driven over a fabric whose links
// drop, duplicate, reorder and jitter remote writes under a seeded,
// fully deterministic fault plane (internal/fault).
//
// Three experiments from the internal/exp registry:
//
//   - faultsweep: goodput and p50/p99 per-message latency across a
//     drop-rate × payload-size grid, with the recovery traffic the
//     plane forced (retransmissions, re-credits, fabric drops);
//   - recovery: how long after a link-down window heals until the
//     first payload lands again;
//   - faultsearch: a bounded model-checking hunt over scheduler
//     interleavings × seeded fault plans, asserting exactly-once
//     in-order delivery; a violation is reported with a replay line.
//
// Every cell owns its seeded world, so output is byte-identical for
// any -procs value. -json emits one document in raw simulated
// picoseconds for regression diffing (cmd/benchdiff).
//
// -replay SEED rebuilds the faultsearch world for one seed with
// cluster-wide tracing enabled, runs it straight-line under the
// search's finish policy, and writes a Perfetto trace_event document
// to -trace-out (stdout when unset) — the visual companion to a
// faultsearch verdict or violation line.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"uldma/internal/exp"
)

func main() {
	msgs := flag.Int("msgs", 24, "messages per faultsweep cell")
	seeds := flag.Int("seeds", 4, "faultsearch: seeded fault plans to model-check")
	depth := flag.Int("depth", 4, "faultsearch: explicit scheduling decisions per schedule")
	replay := flag.Uint64("replay", 0, "rebuild the faultsearch world for this seed and write its cluster-wide Perfetto trace to -trace-out (stdout when unset)")
	procs := flag.Int("procs", 0, "worker goroutines for independent worlds (0 = GOMAXPROCS)")
	jsonOut := flag.Bool("json", false, "emit results as one JSON document (raw simulated picoseconds)")
	list := flag.Bool("list", false, "list the registered experiments and exit")
	flag.Parse()
	stop, err := exp.StartProfiles()
	if err != nil {
		fmt.Fprintln(os.Stderr, "faultsim:", err)
		os.Exit(2)
	}
	defer stop()
	if *list {
		fmt.Print(exp.List())
		return
	}
	if *replay != 0 {
		verdict, err := exp.FaultReplay(*replay, 3)
		if err != nil {
			fmt.Fprintln(os.Stderr, "faultsim:", err)
			exp.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "faultsim: seed %d replayed: %s\n", *replay, verdict)
		return
	}
	if err := run(*msgs, *seeds, *depth, *procs, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "faultsim:", err)
		exp.Exit(1)
	}
	if err := exp.FlushTrace(); err != nil {
		fmt.Fprintln(os.Stderr, "faultsim:", err)
		exp.Exit(1)
	}
}

// faultJSON is the -json document.
type faultJSON struct {
	Msgs     int
	Sweep    []exp.FaultRow
	Recovery []exp.RecoveryRow
	Search   []exp.FaultSearchRow
}

func run(msgs, seeds, depth, procs int, jsonOut bool) error {
	p := exp.Params{Msgs: msgs, Seeds: seeds, Slots: depth, Procs: procs}
	sweep, err := exp.RunNamed("faultsweep", p)
	if err != nil {
		return err
	}
	recov, err := exp.RunNamed("recovery", p)
	if err != nil {
		return err
	}
	search, err := exp.RunNamed("faultsearch", p)
	if err != nil {
		return err
	}
	if jsonOut {
		doc := faultJSON{
			Msgs:     msgs,
			Sweep:    exp.FaultRows(sweep),
			Recovery: exp.RecoveryRows(recov),
			Search:   exp.FaultSearchRows(search),
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}
	for _, sec := range []struct {
		name string
		r    *exp.Result
	}{{"faultsweep", sweep}, {"recovery", recov}, {"faultsearch", search}} {
		s, err := exp.RenderNamed(sec.name, exp.Text, sec.r, p)
		if err != nil {
			return err
		}
		fmt.Print(s)
		fmt.Println()
	}
	return nil
}
