// Quickstart: the smallest complete user-level DMA program.
//
// It builds the calibrated Alpha+TurboChannel machine with the engine
// in extended-shadow mode, sets up one process with a source and a
// destination page, and moves 1 KiB between them with the paper's
// fastest method — two user-mode instructions, no syscall.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	userdma "uldma/internal/core"
	"uldma/internal/proc"
	"uldma/internal/vm"
)

func main() {
	method := userdma.ExtShadow{}
	m := userdma.Machine(method) // machine preset wired for the method

	const srcVA, dstVA = vm.VAddr(0x10000), vm.VAddr(0x20000)

	// The guest program: initiate the DMA, print the status word, wait
	// for completion by polling from user level.
	var h *userdma.Handle
	p := m.NewProcess("quickstart", func(c *proc.Context) error {
		fmt.Println("user-level sequence for DMA(src, dst, 1024):")
		prog, _ := h.Program(srcVA, dstVA, 1024)
		fmt.Print(prog.Disassemble())

		start := m.Clock.Now()
		status, err := h.DMA(c, srcVA, dstVA, 1024)
		if err != nil {
			return err
		}
		fmt.Printf("\ninitiated in %v (status: %d bytes to go)\n", m.Clock.Now()-start, status)
		if err := h.Wait(c, 1000); err != nil {
			return err
		}
		fmt.Printf("transfer complete at t=%v\n", m.Clock.Now())
		return nil
	})

	// Setup-time kernel work (once per process, not per transfer):
	// register context, data pages, shadow aliases.
	var err error
	if h, err = method.Attach(m, p); err != nil {
		log.Fatal(err)
	}
	srcFrames, err := m.SetupPages(p, srcVA, 1, vm.Read|vm.Write)
	if err != nil {
		log.Fatal(err)
	}
	dstFrames, err := m.SetupPages(p, dstVA, 1, vm.Read|vm.Write)
	if err != nil {
		log.Fatal(err)
	}
	if err := m.Mem.Fill(srcFrames[0], 1024, 0x42); err != nil {
		log.Fatal(err)
	}

	if err := m.Run(proc.NewRoundRobin(64), 1_000_000); err != nil {
		log.Fatal(err)
	}
	if p.Err() != nil {
		log.Fatal(p.Err())
	}

	// Verify from outside the machine.
	got, err := m.Mem.ReadBytes(dstFrames[0], 1024)
	if err != nil {
		log.Fatal(err)
	}
	ok := true
	for _, b := range got {
		if b != 0x42 {
			ok = false
			break
		}
	}
	fmt.Printf("destination verified: %v (1024 bytes of 0x42)\n", ok)
	fmt.Printf("kernel crossings during the transfer: %d\n", m.Kernel.Stats().Syscalls)
}
