// atomics: user-level atomic operations (§3.5) building real
// coordination primitives.
//
// Four processes share one page. Phase 1 bumps a shared counter with
// user-level fetch_and_add — no locks, no kernel. Phase 2 guards a
// deliberately non-atomic read-modify-write with a compare_and_swap
// spinlock. Phase 3 measures the user-level vs kernel-initiated cost of
// the same engine operation.
//
// Run with: go run ./examples/atomics
package main

import (
	"fmt"
	"log"

	userdma "uldma/internal/core"
	"uldma/internal/dma"
	"uldma/internal/machine"
	"uldma/internal/phys"
	"uldma/internal/proc"
	"uldma/internal/sim"
	"uldma/internal/vm"
)

const (
	pageVA    = vm.VAddr(0x50000)
	counterVA = pageVA      // phase 1 counter
	lockVA    = pageVA + 64 // phase 2 lock word (32-bit)
	guardedVA = pageVA + 128
	procs     = 4
	perProc   = 100
)

func main() {
	m := machine.MustNew(machine.Alpha3000TC(dma.ModeExtended, 0))

	var frame phys.Addr
	for i := 0; i < procs; i++ {
		i := i
		p := m.NewProcess(fmt.Sprintf("worker%d", i), worker)
		if i == 0 {
			f, err := m.Kernel.AllocPage(p.AddressSpace(), pageVA, vm.Read|vm.Write)
			if err != nil {
				log.Fatal(err)
			}
			frame = f
		} else if err := m.Kernel.MapFrame(p.AddressSpace(), pageVA, frame, vm.Read|vm.Write); err != nil {
			log.Fatal(err)
		}
		if err := userdma.SetupAtomics(m, p, pageVA); err != nil {
			log.Fatal(err)
		}
	}

	// Random preemption: the adversarial schedule for atomicity bugs.
	if err := m.Run(proc.NewRandom(2024), 100_000_000); err != nil {
		log.Fatal(err)
	}
	for _, p := range m.Runner.Processes() {
		if p.Err() != nil {
			log.Fatalf("%s: %v", p.Name(), p.Err())
		}
	}

	counter, _ := m.Mem.Read(frame, phys.Size64)
	guarded, _ := m.Mem.Read(frame+128, phys.Size64)
	fmt.Printf("phase 1 — fetch_and_add counter: %d (want %d)\n", counter, procs*perProc)
	fmt.Printf("phase 2 — spinlock-guarded counter: %d (want %d)\n", guarded, procs*perProc)
	fmt.Printf("engine atomic operations executed: %d, kernel crossings: %d\n",
		m.Engine.Stats().AtomicOps, m.Kernel.Stats().Syscalls)

	// Phase 3: latency comparison on a fresh machine.
	userCost, kernelCost := measureCosts()
	fmt.Printf("\nphase 3 — one fetch_and_add: user-level %v, via syscall %v (%.0fx)\n",
		userCost, kernelCost, float64(kernelCost)/float64(userCost))
}

func worker(c *proc.Context) error {
	// Phase 1: lock-free shared counter.
	for i := 0; i < perProc; i++ {
		if _, err := userdma.FetchAdd(c, counterVA, 1); err != nil {
			return err
		}
	}
	// Phase 2: non-atomic increment under a CAS spinlock.
	lock := &userdma.SpinLock{VA: lockVA, MaxAttempts: 1 << 20}
	for i := 0; i < perProc; i++ {
		if err := lock.Lock(c); err != nil {
			return err
		}
		v, err := c.Load(guardedVA, phys.Size64)
		if err != nil {
			return err
		}
		c.Spin(20) // widen the race window on purpose
		if err := c.Store(guardedVA, phys.Size64, v+1); err != nil {
			return err
		}
		if err := lock.Unlock(c); err != nil {
			return err
		}
	}
	return nil
}

func measureCosts() (user, kern sim.Time) {
	m := machine.MustNew(machine.Alpha3000TC(dma.ModeExtended, 0))
	p := m.NewProcess("timer", func(c *proc.Context) error {
		if _, err := userdma.FetchAdd(c, counterVA, 0); err != nil { // warm TLB
			return err
		}
		start := m.Clock.Now()
		for i := 0; i < 100; i++ {
			if _, err := userdma.FetchAdd(c, counterVA, 1); err != nil {
				return err
			}
		}
		user = (m.Clock.Now() - start) / 100
		start = m.Clock.Now()
		for i := 0; i < 100; i++ {
			if _, err := userdma.KernelFetchAdd(c, counterVA, 1); err != nil {
				return err
			}
		}
		kern = (m.Clock.Now() - start) / 100
		return nil
	})
	if _, err := m.Kernel.AllocPage(p.AddressSpace(), pageVA, vm.Read|vm.Write); err != nil {
		log.Fatal(err)
	}
	if err := userdma.SetupAtomics(m, p, pageVA); err != nil {
		log.Fatal(err)
	}
	if err := m.Run(proc.NewRoundRobin(1<<20), 10_000_000); err != nil {
		log.Fatal(err)
	}
	if p.Err() != nil {
		log.Fatal(p.Err())
	}
	return user, kern
}
