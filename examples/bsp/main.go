// bsp: a bulk-synchronous scientific kernel on the NOW — the workload
// class the paper's introduction motivates ("high performance
// scientific computing" on workstation clusters).
//
// Four workstations each own a shard of a vector. Each superstep every
// rank computes a local partial sum (real loads from its simulated
// memory), the ranks combine it with an all-reduce built on user-level
// remote atomics, and a barrier closes the step. No kernel is entered
// after setup.
//
// Run with: go run ./examples/bsp
package main

import (
	"fmt"
	"log"

	"uldma/internal/coll"
	userdma "uldma/internal/core"
	"uldma/internal/net"
	"uldma/internal/phys"
	"uldma/internal/proc"
	"uldma/internal/vm"
)

const (
	ranks      = 4
	elemsEach  = 64 // 64 words per rank
	supersteps = 3
	shardVA    = vm.VAddr(0x80000)
)

func main() {
	cluster, err := net.NewCluster(ranks, userdma.ConfigFor(userdma.ExtShadow{}), net.Gigabit())
	if err != nil {
		log.Fatal(err)
	}

	var comms []*coll.Comm
	procs := make([]*proc.Process, ranks)
	totals := make([][]uint64, ranks)

	for i := 0; i < ranks; i++ {
		i := i
		procs[i] = cluster.Nodes[i].NewProcess(fmt.Sprintf("rank%d", i), func(c *proc.Context) error {
			comm := comms[i]
			for step := 1; step <= supersteps; step++ {
				// Local phase: scale the shard, then sum it with loads.
				var local uint64
				for e := 0; e < elemsEach; e++ {
					va := shardVA + vm.VAddr(8*e)
					v, err := c.Load(va, phys.Size64)
					if err != nil {
						return err
					}
					v *= uint64(step)
					if err := c.Store(va, phys.Size64, v); err != nil {
						return err
					}
					local += v
				}
				// Communication phase: global sum; synchronize.
				global, err := comm.AllReduceSum(c, local)
				if err != nil {
					return err
				}
				totals[i] = append(totals[i], global)
				if err := comm.Barrier(c); err != nil {
					return err
				}
			}
			return nil
		})
	}

	comms, err = coll.New(cluster, procs)
	if err != nil {
		log.Fatal(err)
	}
	// Shards: rank i's element e starts as i+1.
	for i := 0; i < ranks; i++ {
		frame, err := cluster.Nodes[i].Kernel.AllocPage(procs[i].AddressSpace(), shardVA, vm.Read|vm.Write)
		if err != nil {
			log.Fatal(err)
		}
		for e := 0; e < elemsEach; e++ {
			cluster.Nodes[i].Mem.Write(frame+phys.Addr(8*e), phys.Size64, uint64(i+1))
		}
	}

	if err := cluster.RunRoundRobin(6, 1<<62); err != nil {
		log.Fatal(err)
	}
	for i, p := range procs {
		if p.Err() != nil {
			log.Fatalf("rank %d: %v", i, p.Err())
		}
	}

	// Expected: sum over ranks of (i+1)*step! * elems.
	fact := uint64(1)
	for step := 1; step <= supersteps; step++ {
		fact *= uint64(step)
		want := uint64(0)
		for i := 0; i < ranks; i++ {
			want += uint64(i+1) * fact * elemsEach
		}
		got := totals[0][step-1]
		status := "OK"
		for i := 0; i < ranks; i++ {
			if totals[i][step-1] != want {
				status = fmt.Sprintf("MISMATCH at rank %d: %d", i, totals[i][step-1])
			}
		}
		fmt.Printf("superstep %d: global sum = %-8d (want %d) %s\n", step, got, want, status)
	}
	crossings := 0
	for _, n := range cluster.Nodes {
		crossings += int(n.Kernel.Stats().Syscalls)
	}
	fmt.Printf("kernel crossings across the whole computation: %d\n", crossings)
	fmt.Printf("fabric traffic: %d messages; finished at t=%v\n",
		cluster.Fabric.Stats().Messages, cluster.Clock.Now())
}
