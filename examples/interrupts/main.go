// interrupts: the poll-vs-interrupt trade, demonstrated.
//
// A "transfer" process moves 64 KiB by user-level DMA (about 1.3 ms on
// the wire) and then waits for completion twice — first by user-level
// polling, then by sleeping in the kernel until the completion
// interrupt (SysDMAWait) — while a "compute" process wants the CPU.
// The per-process CPU accounting shows who actually got the machine.
//
// Run with: go run ./examples/interrupts
package main

import (
	"fmt"
	"log"

	userdma "uldma/internal/core"
	"uldma/internal/proc"
	"uldma/internal/sim"
	"uldma/internal/vm"
)

const (
	srcVA = vm.VAddr(0x100000)
	dstVA = vm.VAddr(0x200000)
	size  = 65536
)

func main() {
	for _, blocking := range []bool{false, true} {
		waiterCPU, computeCPU, wall, err := run(blocking)
		if err != nil {
			log.Fatal(err)
		}
		mode := "polling (user-level status reads)"
		if blocking {
			mode = "blocking (sleep until completion interrupt)"
		}
		fmt.Printf("%s\n", mode)
		fmt.Printf("  waiter CPU: %-12v compute CPU: %-12v wall: %v\n\n",
			waiterCPU, computeCPU, wall)
	}
	fmt.Println("Same transfer, same wall clock — blocking hands the dead time to the")
	fmt.Println("compute process at the price of one trap. Polling keeps everything in")
	fmt.Println("user space but burns the CPU for the whole transfer.")
}

func run(blocking bool) (waiterCPU, computeCPU, wall sim.Time, err error) {
	method := userdma.ExtShadow{}
	m := userdma.Machine(method)
	var h *userdma.Handle
	waiter := m.NewProcess("waiter", func(c *proc.Context) error {
		st, err := h.DMA(c, srcVA, dstVA, size)
		if err != nil {
			return err
		}
		if st == userdma.StatusFailure {
			return fmt.Errorf("initiation refused")
		}
		if blocking {
			return h.WaitBlocking(c)
		}
		return h.Wait(c, 1_000_000)
	})
	compute := m.NewProcess("compute", func(c *proc.Context) error {
		for i := 0; i < 400; i++ {
			c.Spin(500) // ~3.3 µs of work per slot
		}
		return nil
	})
	if h, err = method.Attach(m, waiter); err != nil {
		return 0, 0, 0, err
	}
	if _, err = m.SetupPages(waiter, srcVA, 8, vm.Read|vm.Write); err != nil {
		return 0, 0, 0, err
	}
	if _, err = m.SetupPages(waiter, dstVA, 8, vm.Read|vm.Write); err != nil {
		return 0, 0, 0, err
	}
	if err = m.Run(proc.NewRoundRobin(8), 1<<62); err != nil {
		return 0, 0, 0, err
	}
	for _, p := range m.Runner.Processes() {
		if p.Err() != nil {
			return 0, 0, 0, fmt.Errorf("%s: %w", p.Name(), p.Err())
		}
	}
	return waiter.CPUTime(), compute.CPUTime(), m.Clock.Now(), nil
}
