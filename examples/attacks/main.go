// attacks: the paper's adversarial studies as a runnable narrative.
//
// Section 3.3 develops the "repeated passing of arguments" method by
// showing two broken designs first. This example walks through all
// three, printing what the engine actually did in each case:
//
//  1. Figure 5 — the 3-access variant lets a malicious process inject
//     its own data into the victim's private page.
//  2. Figure 6 — the 4-access variant lets an attacker steal the
//     initiation and misinform the victim.
//  3. Figure 8 — the 5-access variant survives the same schedules, an
//     exhaustive interleaving search, and a random adversarial
//     campaign.
//
// Run with: go run ./examples/attacks
package main

import (
	"fmt"
	"log"

	userdma "uldma/internal/core"
)

func main() {
	fmt.Println("== Act 1: the 3-access sequence (Figure 5) ==")
	fmt.Println("victim:   LOAD shadow(A); STORE size->shadow(B); LOAD shadow(A)")
	fmt.Println("attacker: accesses ONLY its own pages FOO and C")
	o5, err := userdma.Figure5()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine started:  %v\n", o5.Transfers)
	fmt.Printf("victim's view:   success=%v\n", o5.VictimBelievesSuccess)
	fmt.Printf("verdict:         hijacked=%v — attacker data now sits in the victim's page B\n\n",
		o5.Hijacked)

	fmt.Println("== Act 2: the 4-access sequence (Figure 6) ==")
	fmt.Println("victim:   STORE, LOAD, STORE, LOAD over (B, A)")
	fmt.Println("attacker: one read of shadow(A) — A is public, read access is legal")
	o6, err := userdma.Figure6()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine started:  %v (the data is even correct!)\n", o6.Transfers)
	fmt.Printf("attacker's load: status=%#x — the attacker consumed the initiation\n", o6.AttackerStatus)
	fmt.Printf("victim's view:   success=%v — told FAILURE for a DMA that ran\n", o6.VictimBelievesSuccess)
	fmt.Printf("verdict:         misinformed=%v\n\n", o6.Misinformed)

	fmt.Println("== Act 3: the 5-access sequence (Figures 7 & 8) ==")
	fmt.Println("victim:   STORE, LOAD, STORE, LOAD, LOAD with retries (Figure 7)")
	o8, err := userdma.Figure8Replay()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same attack schedule: %v\n", o8)

	tried, hijack, err := userdma.ExhaustiveInterleavings(4)
	if err != nil {
		log.Fatal(err)
	}
	if hijack != nil {
		log.Fatalf("UNEXPECTED hijack: %v", *hijack)
	}
	fmt.Printf("exhaustive search:    %d interleavings, zero hijacks\n", tried)

	hijacks, deceptions := 0, 0
	const campaigns = 30
	for seed := uint64(1); seed <= campaigns; seed++ {
		o, err := userdma.RandomAdversarialRun(seed, false, false)
		if err != nil {
			log.Fatal(err)
		}
		if o.Hijacked {
			hijacks++
		}
		if o.Misinformed {
			deceptions++
		}
	}
	fmt.Printf("random campaigns:     %d runs — %d hijacks, %d status deceptions\n",
		campaigns, hijacks, deceptions)
	fmt.Println()
	fmt.Println("Conclusion: the 5-access engine never moves data it should not (§3.3.1's")
	fmt.Println("proof holds under exhaustive search), though a sufficiently noisy attacker")
	fmt.Println("can still make the in-band status word lie — poll out of band when it matters.")
}
