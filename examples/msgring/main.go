// msgring: a three-workstation ring exchanging messages with the msg
// library — payload by user-level DMA, headers and credits by remote
// writes, zero kernel crossings after setup.
//
// A token message circulates the ring; every hop appends its node id.
// At the end we print the token's journey and each kernel's syscall
// counter (spoiler: all zero).
//
// Run with: go run ./examples/msgring
package main

import (
	"fmt"
	"log"

	userdma "uldma/internal/core"
	"uldma/internal/msg"
	"uldma/internal/net"
	"uldma/internal/proc"
)

const (
	nodes  = 3
	rounds = 2
)

func main() {
	method := userdma.ExtShadow{}
	cluster, err := net.NewCluster(nodes, userdma.ConfigFor(method), net.Gigabit())
	if err != nil {
		log.Fatal(err)
	}

	// One process per node; channels i -> (i+1) % nodes.
	procs := make([]*proc.Process, nodes)
	tx := make([]*msg.Sender, nodes)
	rx := make([]*msg.Receiver, nodes)
	var journey []byte

	for i := 0; i < nodes; i++ {
		i := i
		procs[i] = cluster.Nodes[i].NewProcess(fmt.Sprintf("node%d", i), func(c *proc.Context) error {
			buf := make([]byte, 128)
			if i == 0 {
				// Kick off the token.
				if err := tx[0].Send(c, []byte{'0'}); err != nil {
					return err
				}
			}
			hops := rounds
			if i == 0 {
				hops = rounds // node 0 also receives the final arrival
			}
			for h := 0; h < hops; h++ {
				n, err := rx[i].Recv(c, buf)
				if err != nil {
					return err
				}
				token := append(buf[:n:n], byte('0'+i))
				if i == 0 && h == hops-1 {
					journey = token // final arrival: keep, stop forwarding
					return nil
				}
				if err := tx[i].Send(c, token); err != nil {
					return err
				}
			}
			return nil
		})
	}

	// Wire the ring (Attach before channel setup: context ids go into
	// the shadow mappings).
	for i := 0; i < nodes; i++ {
		h, err := method.Attach(cluster.Nodes[i], procs[i])
		if err != nil {
			log.Fatal(err)
		}
		next := (i + 1) % nodes
		tx[i], rx[next], err = msg.NewChannel(
			cluster.Nodes[i], procs[i], h,
			cluster.Nodes[next], procs[next], next,
			msg.Config{Slots: 4, SlotPayload: 128})
		if err != nil {
			log.Fatal(err)
		}
	}

	if err := cluster.RunRoundRobin(8, 1<<62); err != nil {
		log.Fatal(err)
	}
	for i, p := range procs {
		if p.Err() != nil {
			log.Fatalf("node %d: %v", i, p.Err())
		}
	}

	fmt.Printf("token journey: %s (started at node 0, %d rounds around %d nodes)\n",
		journey, rounds, nodes)
	fmt.Printf("fabric: %d messages, %d bytes\n",
		cluster.Fabric.Stats().Messages, cluster.Fabric.Stats().Bytes)
	for i, n := range cluster.Nodes {
		fmt.Printf("node %d kernel crossings after setup: %d\n", i, n.Kernel.Stats().Syscalls)
	}
	fmt.Printf("finished at simulated t=%v\n", cluster.Clock.Now())
}
