// nowtransfer: the paper's motivating scenario — two workstations on a
// fast LAN exchanging a message, once with kernel-initiated DMA and
// once with user-level (extended shadow) initiation.
//
// Node 0 DMAs a payload into node 1's mailbox and rings a doorbell with
// a remote write; node 1 polls the doorbell and reports when the
// message landed. The printout shows the initiation gap directly.
//
// Run with: go run ./examples/nowtransfer
package main

import (
	"fmt"
	"log"

	userdma "uldma/internal/core"
	"uldma/internal/dma"
	"uldma/internal/machine"
	"uldma/internal/net"
	"uldma/internal/phys"
	"uldma/internal/proc"
	"uldma/internal/sim"
	"uldma/internal/vm"
)

const (
	srcVA    = vm.VAddr(0x10000)
	remVA    = vm.VAddr(0x20000)
	boxVA    = vm.VAddr(0x30000)
	mailbox  = phys.Addr(0x80000)
	doorbell = 8184 // last word of the mailbox page
	msgSize  = 2048
)

func main() {
	for _, method := range []userdma.Method{userdma.KernelLevel{}, userdma.ExtShadow{}} {
		initTime, arrival, err := sendOne(method)
		if err != nil {
			log.Fatalf("%s: %v", method.Name(), err)
		}
		fmt.Printf("%-24s initiation %-10v message delivered at t=%v\n",
			method.Name()+":", initTime, arrival)
	}
	fmt.Println("\nSame wire, same payload — the difference is purely who starts the DMA.")
}

func sendOne(method userdma.Method) (initTime, arrival sim.Time, err error) {
	cluster, err := net.NewCluster(2, machine.Alpha3000TC(method.EngineMode(), method.SeqLen()), net.Gigabit())
	if err != nil {
		return 0, 0, err
	}
	n0, n1 := cluster.Nodes[0], cluster.Nodes[1]

	var h *userdma.Handle
	sender := n0.NewProcess("sender", func(c *proc.Context) error {
		start := n0.Clock.Now()
		status, err := h.DMA(c, srcVA, remVA, msgSize)
		if err != nil {
			return err
		}
		if status == dma.StatusFailure {
			return fmt.Errorf("initiation refused")
		}
		initTime = n0.Clock.Now() - start
		// The DMA is asynchronous: wait for it to drain before ringing
		// the doorbell, or the one-word doorbell would overtake the
		// payload on the engine.
		if err := h.Wait(c, 100_000); err != nil {
			return err
		}
		// Ring the doorbell (a single remote write) behind the data.
		if err := c.Store(remVA+doorbell, phys.Size64, 1); err != nil {
			return err
		}
		return c.MB()
	})
	receiver := n1.NewProcess("receiver", func(c *proc.Context) error {
		for {
			v, err := c.Load(boxVA+doorbell, phys.Size64)
			if err != nil {
				return err
			}
			if v != 0 {
				arrival = n1.Clock.Now()
				return nil
			}
			c.Spin(500)
		}
	})

	if h, err = method.Attach(n0, sender); err != nil {
		return 0, 0, err
	}
	frames, err := n0.SetupPages(sender, srcVA, 1, vm.Read|vm.Write)
	if err != nil {
		return 0, 0, err
	}
	n0.Mem.Fill(frames[0], msgSize, 0x7a)
	if err := n0.Kernel.MapRemote(sender, remVA, 1, mailbox); err != nil {
		return 0, 0, err
	}
	if err := n0.Kernel.MapShadow(sender, remVA); err != nil {
		return 0, 0, err
	}
	if err := n1.Kernel.MapFrame(receiver.AddressSpace(), boxVA, mailbox, vm.Read); err != nil {
		return 0, 0, err
	}

	if err := cluster.RunRoundRobin(8, 10_000_000); err != nil {
		return 0, 0, err
	}
	for _, p := range []*proc.Process{sender, receiver} {
		if p.Err() != nil {
			return 0, 0, p.Err()
		}
	}
	// Check the payload actually landed next to the doorbell.
	got, err := n1.Mem.ReadBytes(mailbox, msgSize)
	if err != nil {
		return 0, 0, err
	}
	for _, b := range got {
		if b != 0x7a {
			return 0, 0, fmt.Errorf("payload corrupted in flight")
		}
	}
	return initTime, arrival, nil
}
